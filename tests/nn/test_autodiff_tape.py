"""Tape-core tests: grad modes, functional grad/hvp, higher-order classics.

The first-order semantics of :meth:`Tensor.backward` are covered by
``test_tensor.py`` (unchanged across the tape refactor — that is the
point).  This file covers what the tape adds: ``no_grad``/``enable_grad``
as decorators, Tensor exponents, repeated/retained backward walks, the
functional :func:`repro.nn.grad` interface, and grad-of-grad against
analytic second derivatives and finite differences of first gradients.
"""

import numpy as np
import pytest

from repro.nn import Tensor, enable_grad, grad, hvp, is_grad_enabled, no_grad
from repro.nn.modules import Linear, Sequential, Tanh


def numeric_grad(fn, x0, eps=1e-6):
    """Central finite differences of a scalar function of one array."""
    x0 = np.asarray(x0, dtype=np.float64)
    out = np.zeros_like(x0)
    flat_x, flat_g = x0.reshape(-1), out.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = fn(x0)
        flat_x[i] = orig - eps
        lo = fn(x0)
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return out


class TestGradModeDecorators:
    def test_no_grad_decorator_with_parens(self):
        @no_grad()
        def fn(t):
            assert not is_grad_enabled()
            return t * 2.0

        x = Tensor([1.0], requires_grad=True)
        y = fn(x)
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_bare_decorator(self):
        @no_grad
        def fn(t):
            return t * 2.0

        x = Tensor([1.0], requires_grad=True)
        assert not fn(x).requires_grad

    def test_no_grad_still_a_context_manager(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert (x * 2.0).requires_grad

    def test_enable_grad_reenables_inside_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2.0
            z = x * 3.0
        assert y.requires_grad
        assert not z.requires_grad

    def test_enable_grad_decorator(self):
        @enable_grad()
        def fn(t):
            return t * 2.0

        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = fn(x)
        assert y.requires_grad

    def test_decorator_restores_flag_on_exception(self):
        @no_grad()
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            boom()
        assert is_grad_enabled()


class TestTensorExponent:
    def test_pow_tensor_exponent_grads(self):
        a0 = np.array([1.5, 2.0, 0.7])
        b0 = np.array([2.0, -1.0, 0.5])
        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (a**b).sum().backward()
        np.testing.assert_allclose(
            a.grad, numeric_grad(lambda x: (x**b0).sum(), a0), atol=1e-6
        )
        np.testing.assert_allclose(
            b.grad, numeric_grad(lambda x: (a0**x).sum(), b0), atol=1e-6
        )

    def test_pow_tensor_exponent_broadcast(self):
        a = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a**b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 2), 3.0 * 4.0))
        np.testing.assert_allclose(b.grad, [6 * 8.0 * np.log(2.0)])

    def test_pow_rejects_non_scalar_non_tensor(self):
        a = Tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError, match="scalar exponents and Tensor"):
            a ** np.array([1.0, 2.0])

    def test_scalar_pow_unchanged(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        np.testing.assert_allclose(a.grad, [6.0])


class TestRepeatedBackward:
    def test_retain_graph_many_reruns(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x * x).sum()
        for i in range(1, 4):
            y.backward(retain_graph=True)
            np.testing.assert_allclose(x.grad, [12.0 * i])
        y.backward()  # final run may drop the graph
        np.testing.assert_allclose(x.grad, [48.0])

    def test_accumulation_across_separate_graphs(self):
        x = Tensor([3.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0 + 6.0])

    def test_intermediate_grad_not_retained_between_runs(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = (y * y).sum()
        z.backward(retain_graph=True)
        z.backward(retain_graph=True)
        # Leaf accumulates across runs; intermediate cotangents are
        # released as soon as their node is consumed, so only leaves
        # carry a .grad after the walk.
        np.testing.assert_allclose(x.grad, [2 * 2 * 9 * 2.0])
        assert y.grad is None
        assert z.grad is None

    def test_backward_after_teardown_is_inert(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        x.zero_grad()
        y.backward()  # graph gone: only the root's own grad is seeded
        assert x.grad is None


class TestFunctionalGrad:
    def test_grad_matches_backward(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        y = (x.tanh() * x).sum()
        (g,) = grad(y, [x], retain_graph=True)
        y.backward()
        np.testing.assert_allclose(g.data, x.grad)

    def test_grad_single_tensor_shorthand(self):
        x = Tensor([2.0], requires_grad=True)
        g = grad((x**3).sum(), x)
        np.testing.assert_allclose(g.data, [12.0])

    def test_grad_does_not_touch_grad_buffers(self):
        x = Tensor([2.0], requires_grad=True)
        grad((x * x).sum(), [x])
        assert x.grad is None

    def test_grad_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            grad(x * 2.0, [x])

    def test_grad_with_grad_output(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (g,) = grad(x * x, [x], grad_output=np.array([1.0, 10.0]))
        np.testing.assert_allclose(g.data, [2.0, 40.0])

    def test_unreachable_input_raises_unless_allowed(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).sum()
        with pytest.raises(ValueError, match="allow_unused"):
            grad(y, [z], retain_graph=True)
        gx, gz = grad(y, [x, z], allow_unused=True)
        np.testing.assert_allclose(gx.data, [2.0])
        assert gz is None

    def test_grad_of_input_is_seed(self):
        x = Tensor([5.0], requires_grad=True)
        (g,) = grad(x.sum(), [x])
        np.testing.assert_allclose(g.data, [1.0])


class TestHigherOrder:
    def test_second_derivative_of_cubic(self):
        x = Tensor(np.array([1.0, 2.0, -0.5]), requires_grad=True)
        (g,) = grad((x**3).sum(), [x], create_graph=True)
        (h,) = grad(g.sum(), [x])
        np.testing.assert_allclose(h.data, 6.0 * x.data)

    @pytest.mark.parametrize(
        "fn,second",
        [
            (lambda x: x.exp(), lambda v: np.exp(v)),
            (lambda x: x.log(), lambda v: -1.0 / v**2),
            (lambda x: x.sqrt(), lambda v: -0.25 * v**-1.5),
            (
                lambda x: x.tanh(),
                lambda v: -2 * np.tanh(v) * (1 - np.tanh(v) ** 2),
            ),
            (
                lambda x: x.sigmoid(),
                lambda v: (s := 1 / (1 + np.exp(-v))) * (1 - s) * (1 - 2 * s),
            ),
            (lambda x: 1.0 / x, lambda v: 2.0 / v**3),
        ],
    )
    def test_unary_second_derivatives(self, fn, second):
        v = np.array([0.3, 0.9, 1.7])
        x = Tensor(v.copy(), requires_grad=True)
        (g,) = grad(fn(x).sum(), [x], create_graph=True)
        (h,) = grad(g.sum(), [x])
        np.testing.assert_allclose(h.data, second(v), rtol=1e-10)

    def test_third_derivative(self):
        x = Tensor([2.0], requires_grad=True)
        (g1,) = grad((x**4).sum(), [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x], create_graph=True)
        (g3,) = grad(g2.sum(), [x])
        np.testing.assert_allclose(g3.data, [24.0 * 2.0])

    def test_hvp_matches_finite_diff_of_grads_mlp(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(4, 8, rng=rng), Tanh(), Linear(8, 1, rng=rng))
        x = Tensor(rng.normal(size=(5, 4)))
        params = list(model.parameters())
        vs = [rng.normal(size=p.shape) for p in params]

        def loss():
            return (model(x) ** 2).sum()

        hvps = hvp(loss(), params, vs)

        # Reference: (grad(theta + eps v) - grad(theta - eps v)) / 2eps with
        # EVERY parameter perturbed along its v at once, so the cross-block
        # Hessian terms the full HVP contains are present too.
        eps = 1e-6
        bases = [p.data.copy() for p in params]
        for p, base, v in zip(params, bases, vs):
            p.data = base + eps * v
        gp = grad(loss(), params)
        for p, base, v in zip(params, bases, vs):
            p.data = base - eps * v
        gm = grad(loss(), params)
        for p, base in zip(params, bases):
            p.data = base
        for h, gpq, gmq in zip(hvps, gp, gm):
            fd = (gpq.data - gmq.data) / (2 * eps)
            np.testing.assert_allclose(h.data, fd, atol=1e-4)

    def test_hvp_zero_for_linear_function(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        h = hvp((x * 3.0).sum(), x, np.array([1.0, 1.0]))
        np.testing.assert_allclose(h.data, [0.0, 0.0])

    def test_higher_order_through_shapes_and_indexing(self):
        v = np.array([0.5, 1.5, 2.5, 3.5])
        x = Tensor(v.copy(), requires_grad=True)

        def f(t):
            a = t.reshape(2, 2).T
            b = Tensor.concatenate([a[0], a[1]])
            c = Tensor.stack([b, b * 2.0]).max(axis=0)
            return (c * c).sum()

        (g,) = grad(f(x), [x], create_graph=True)
        (h,) = grad(g.sum(), [x])
        # f reduces to sum((2 t_i)^2) = 4 sum t_i^2; grad = 8 t, hess diag 8.
        np.testing.assert_allclose(g.data, 8.0 * v)
        np.testing.assert_allclose(h.data, np.full(4, 8.0))

    def test_higher_order_matmul(self):
        rng = np.random.default_rng(3)
        w0 = rng.normal(size=(3, 3))
        x0 = rng.normal(size=(2, 3))
        w = Tensor(w0.copy(), requires_grad=True)
        x = Tensor(x0.copy())

        def quartic(wt):
            y = x @ wt
            return ((y @ wt) ** 2).sum()

        def quartic_np(xm, wm):
            y = xm @ wm
            return float(((y @ wm) ** 2).sum())

        (g,) = grad(quartic(w), [w], create_graph=True)
        v = rng.normal(size=(3, 3))
        h = hvp(quartic(w), w, v)
        gp = numeric_grad(lambda m: quartic_np(x0, m), w0)
        np.testing.assert_allclose(g.data, gp, atol=1e-5)
        # Outer difference over the (already finite-diff-validated) exact
        # first-order gradient, so the reference error stays O(eps^2).
        eps = 1e-6
        w.data = w0 + eps * v
        g_plus = grad(quartic(w), w)
        w.data = w0 - eps * v
        g_minus = grad(quartic(w), w)
        w.data = w0
        fd = (g_plus.data - g_minus.data) / (2 * eps)
        np.testing.assert_allclose(h.data, fd, atol=1e-4)


class TestModuleFreezing:
    def test_requires_grad_freezes_and_unfreezes(self):
        rng = np.random.default_rng(1)
        model = Sequential(Linear(3, 3, rng=rng), Tanh(), Linear(3, 1, rng=rng))
        x = Tensor(rng.normal(size=(2, 3)))
        model.requires_grad_(False)
        out = (model(x) ** 2).sum()
        assert not out.requires_grad
        model.requires_grad_(True)
        (model(x) ** 2).sum().backward()
        assert all(p.grad is not None for p in model.parameters())
