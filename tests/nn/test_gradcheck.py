"""Property-based gradient checks: every autodiff op vs finite differences.

The quantum gradients are validated against the parameter-shift rule in
``tests/quantum``; this module gives the classical ops the same treatment
under randomized shapes and values.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor


def numeric_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat_g, flat_x = grad.reshape(-1), x.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        hi = fn(x)
        flat_x[i] = orig - eps
        lo = fn(x)
        flat_x[i] = orig
        flat_g[i] = (hi - lo) / (2 * eps)
    return grad


def check(op, x0, atol=1e-5, weight=None):
    """Compare autodiff grad of sum(weight * op(x)) with finite differences."""
    weight = weight if weight is not None else np.ones(1)
    x = Tensor(x0.copy(), requires_grad=True)
    (op(x) * Tensor(weight)).sum().backward()
    fd = numeric_grad(lambda arr: (op(Tensor(arr)).data * weight).sum(),
                      x0.copy())
    np.testing.assert_allclose(x.grad, fd, atol=atol)


shapes = st.sampled_from([(3,), (2, 4), (3, 2, 2)])
seeds = st.integers(0, 10_000)


class TestUnaryOps:
    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_exp(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(-2, 2, shape)
        check(lambda t: t.exp(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_log(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(0.2, 3, shape)
        check(lambda t: t.log(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_sqrt(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(0.2, 3, shape)
        check(lambda t: t.sqrt(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_sigmoid(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(-3, 3, shape)
        check(lambda t: t.sigmoid(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_tanh(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(-3, 3, shape)
        check(lambda t: t.tanh(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_relu_away_from_kink(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(-3, 3, shape)
        x0[np.abs(x0) < 1e-3] = 0.5  # keep FD away from the kink
        check(lambda t: t.relu(), x0)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_pow(self, shape, seed):
        x0 = np.random.default_rng(seed).uniform(0.3, 2, shape)
        check(lambda t: t**3, x0)


class TestBinaryAndReduce:
    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_mul_with_random_cotangent(self, shape, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(-2, 2, shape)
        other = rng.uniform(-2, 2, shape)
        weight = rng.normal(size=shape)
        check(lambda t: t * Tensor(other), x0, weight=weight)

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_div(self, shape, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(0.5, 2, shape)
        other = rng.uniform(0.5, 2, shape)
        check(lambda t: t / Tensor(other), x0)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_matmul_chain(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        weight = rng.normal(size=(3, 2))
        check(lambda t: t @ Tensor(w), x0, weight=weight)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, axis=st.sampled_from([0, 1, None]))
    def test_sum_axes(self, seed, axis):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(3, 4))
        check(lambda t: t.sum(axis=axis), x0)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_mean(self, seed):
        x0 = np.random.default_rng(seed).normal(size=(2, 5))
        check(lambda t: t.mean(axis=1), x0)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_broadcast_add(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(1, 4))
        other = rng.normal(size=(3, 4))
        check(lambda t: t + Tensor(other), x0)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_composite_expression(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(0.2, 1.5, (2, 3))

        def op(t):
            return ((t * 2.0 + 1.0).log() * t.sigmoid()).tanh()

        check(op, x0)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_reshape_transpose_composite(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(2, 6))

        def op(t):
            return (t.reshape(3, 4).T * Tensor(np.ones((4, 3)))).sum(axis=0)

        check(op, x0)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_concat_graph(self, seed):
        rng = np.random.default_rng(seed)
        x0 = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 2)))

        def op(t):
            return Tensor.concatenate([t, other], axis=1) * 2.0

        check(op, x0)
