"""Tests for the precision policy and dtype-parameterized nn substrate."""

import numpy as np
import pytest

from repro.nn import (
    FLOAT32,
    FLOAT64,
    MIXED32,
    Adam,
    Linear,
    Precision,
    Tensor,
    default_precision,
    resolve_precision,
    set_default_precision,
    use_precision,
    functional as F,
)
from repro.nn.init import fresh_rng
from repro.nn.precision import complex_dtype_for, grad_dtype, real_dtype_for


class TestPolicy:
    def test_default_is_float64(self):
        prec = default_precision()
        assert prec is FLOAT64
        assert prec.real == np.float64
        assert prec.complex == np.complex128

    def test_resolve_variants(self):
        assert resolve_precision(None) is default_precision()
        assert resolve_precision("float32") is FLOAT32
        assert resolve_precision("mixed32") is MIXED32
        assert resolve_precision(np.float32) is FLOAT32
        assert resolve_precision(np.complex64) is FLOAT32
        assert resolve_precision(np.complex128) is FLOAT64
        assert resolve_precision(FLOAT32) is FLOAT32

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_precision("float16")
        with pytest.raises(ValueError):
            resolve_precision(np.int32)

    def test_context_manager_scopes_and_restores(self):
        assert default_precision() is FLOAT64
        with use_precision("float32") as prec:
            assert prec is FLOAT32
            assert default_precision() is FLOAT32
            with use_precision("mixed32"):
                assert default_precision() is MIXED32
            assert default_precision() is FLOAT32
        assert default_precision() is FLOAT64

    def test_set_default_returns_previous(self):
        previous = set_default_precision("float32")
        try:
            assert previous is FLOAT64
            assert default_precision() is FLOAT32
        finally:
            set_default_precision(previous)
        assert default_precision() is FLOAT64

    def test_paired_dtype_maps(self):
        assert real_dtype_for(np.complex64) == np.float32
        assert real_dtype_for(np.float64) == np.float64
        assert complex_dtype_for(np.float32) == np.complex64
        assert complex_dtype_for(np.complex128) == np.complex128
        with pytest.raises(ValueError):
            real_dtype_for(np.int64)

    def test_precision_is_frozen(self):
        with pytest.raises(Exception):
            FLOAT32.real = np.float64  # type: ignore[misc]
        assert isinstance(FLOAT32, Precision)


class TestTensorDtype:
    def test_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_non_array_data_follows_policy(self):
        assert Tensor([1.0, 2.0]).dtype == np.float64
        with use_precision("float32"):
            assert Tensor([1.0, 2.0]).dtype == np.float32
            # Explicit arrays still win over the policy.
            assert Tensor(np.zeros(2)).dtype == np.float64

    def test_explicit_dtype_casts(self):
        t = Tensor(np.zeros(3), dtype="float32")
        assert t.dtype == np.float32
        with pytest.raises(TypeError):
            Tensor(np.zeros(3), dtype=np.int32)

    def test_ops_propagate_float32(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        y = ((x * 2.0 + 1.0) / 3.0 - 0.5).tanh().exp()
        assert y.dtype == np.float32
        z = (y @ Tensor(np.ones((3, 2), dtype=np.float32))).sum()
        assert z.dtype == np.float32
        z.backward()
        assert x.grad.dtype == np.float64  # default policy widens buffers

    def test_grad_dtype_follows_policy(self):
        with use_precision("float32"):
            x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
            (x * x).sum().backward()
            assert x.grad.dtype == np.float32
        x64 = Tensor(np.ones(4), requires_grad=True)
        with use_precision("mixed32"):
            y = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
            (y * y).sum().backward()
            assert y.grad.dtype == np.float64  # widened accumulation
        (x64 * x64).sum().backward()
        assert x64.grad.dtype == np.float64
        assert grad_dtype(np.float64) == np.float64

    def test_astype_is_differentiable(self):
        x = Tensor(np.full(3, 2.0), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        (y * y).sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, 4.0, rtol=1e-6)
        with pytest.raises(TypeError):
            x.astype(np.int16)

    def test_zeros_ones_follow_policy(self):
        with use_precision("float32"):
            assert Tensor.zeros((2,)).dtype == np.float32
            assert Tensor.ones((2,)).dtype == np.float32
        assert Tensor.zeros((2,)).dtype == np.float64
        assert Tensor.zeros((2,), dtype=np.float32).dtype == np.float32


class TestLayersAndOptim:
    def test_linear_dtype_knob(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0), dtype="float32")
        assert layer.weight.data.dtype == np.float32
        assert layer.bias.data.dtype == np.float32
        out = layer(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.dtype == np.float32

    def test_linear_follows_policy_scope(self):
        with use_precision("float32"):
            layer = Linear(4, 2, rng=np.random.default_rng(0))
        assert layer.weight.data.dtype == np.float32

    def test_adam_preserves_param_dtype_under_mixed_grads(self):
        layer = Linear(4, 4, rng=np.random.default_rng(1), dtype="float32")
        opt = Adam(list(layer.parameters()), lr=0.01)
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        # Default float64 policy -> float64 grad buffers on float32 params.
        F.mse_loss(layer(x), Tensor(np.zeros((2, 4)))).backward()
        assert layer.weight.grad.dtype == np.float64
        opt.step()
        assert layer.weight.data.dtype == np.float32

    def test_float32_training_reduces_loss(self):
        rng = np.random.default_rng(2)
        with use_precision("float32"):
            layer = Linear(8, 8, rng=rng)
            opt = Adam(list(layer.parameters()), lr=0.05)
            x = Tensor(rng.normal(size=(16, 8)).astype(np.float32))
            first = last = None
            for _ in range(30):
                opt.zero_grad()
                loss = F.mse_loss(layer(x), x)
                loss.backward()
                opt.step()
                first = loss.item() if first is None else first
                last = loss.item()
        assert layer.weight.data.dtype == np.float32
        assert last < first * 0.5


class TestFreshRng:
    def test_default_layers_get_distinct_streams(self):
        # Regression: Linear() twice used to draw identical weights from a
        # shared default_rng(0).
        a, b = Linear(4, 4), Linear(4, 4)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_default_quantum_layers_get_distinct_streams(self):
        from repro.qnn import QuantumLayer, angle_expval_circuit

        a = QuantumLayer(angle_expval_circuit(2, 2, 1))
        b = QuantumLayer(angle_expval_circuit(2, 2, 1))
        assert not np.allclose(a.weights.data, b.weights.data)

    def test_explicit_rng_passes_through(self):
        rng = np.random.default_rng(5)
        assert fresh_rng(rng) is rng

    def test_explicit_seeding_still_reproducible(self):
        a = Linear(4, 4, rng=np.random.default_rng(7))
        b = Linear(4, 4, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
