"""Compiled backward plans (repro.nn.graph) vs the reference tape walk.

The contract under test is strict: for any recorded tape, the compiled
program must produce gradients **bit-identical** (plain ``==``, no
tolerance) to the interpreted walk in ``repro.nn.autodiff``, across
precision policies, broadcasting, multi-consumer graphs, and the hybrid
quantum layers — and plans must be cached on structure, recompiling on
any structural change and never re-lowering on steps 2+.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, no_grad
from repro.nn import graph as G
from repro.nn.functional import mse_loss
from repro.nn.optim import SGD
from repro.nn.precision import use_precision


@pytest.fixture(autouse=True)
def _fresh_cache():
    G.clear_plan_cache()
    yield
    G.clear_plan_cache()


def both_modes(build, n_grads=None):
    """Run ``build`` compiled and uncompiled; return both grad lists.

    ``build(rng)`` must construct a fresh graph, run a backward (or
    grad()) pass, and return a list of gradient arrays.
    """
    with G.tape_compile(False):
        ref = build(np.random.default_rng(0))
    with G.tape_compile(True):
        com = build(np.random.default_rng(0))
    assert len(ref) == len(com)
    if n_grads is not None:
        assert len(ref) == n_grads
    return ref, com


def assert_bitwise(ref, com):
    for i, (a, b) in enumerate(zip(ref, com)):
        assert (a is None) == (b is None), f"grad {i} presence differs"
        if a is None:
            continue
        assert a.dtype == b.dtype, f"grad {i}: {a.dtype} vs {b.dtype}"
        assert a.shape == b.shape, f"grad {i}: {a.shape} vs {b.shape}"
        assert np.array_equal(a, b), f"grad {i} not bit-identical"


class TestElementwiseChainEquivalence:
    """Every fusible primitive, alone and in long chains."""

    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: (x * 3.0 + 1.0).sum(),
            lambda x: (-x - 0.5).sum(),
            lambda x: (x * x).exp().sum(),
            lambda x: (x.abs() + 1.0).log().sum(),
            lambda x: (x * x + 1.0).sqrt().sum(),
            lambda x: x.relu().sum(),
            lambda x: x.sigmoid().sum(),
            lambda x: x.tanh().sum(),
            lambda x: x.abs().sum(),
            lambda x: x.clip(-0.5, 0.5).sum(),
            lambda x: (x**3).sum(),
            lambda x: ((x.abs() + 0.1) ** 2.5).sum(),
            lambda x: (x / 1.7).sum(),
        ],
        ids=[
            "mul_add", "neg_sub", "exp", "log", "sqrt", "relu", "sigmoid",
            "tanh", "abs", "clip", "pow_int", "pow_frac", "div",
        ],
    )
    def test_single_op_chains(self, fn):
        def build(rng):
            x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
            fn(x).backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_deep_chain_fuses_and_matches(self):
        def build(rng):
            x = Tensor(rng.normal(size=(8, 16)), requires_grad=True)
            h = x
            for i in range(20):
                h = (h * 1.01).tanh() if i % 2 else (h + 0.1).sigmoid()
            h.sum().backward()
            return [x.grad]

        ref, com = both_modes(build)
        assert_bitwise(ref, com)
        # The lowered plan must actually have fused the chain.
        plans = list(G._PLAN_CACHE.values())
        assert plans and any(p.n_fused_nodes >= 20 for p in plans)

    def test_randomized_graphs(self):
        """Random op soup over several seeds — the differential sweep."""
        unary = [
            lambda t: t.tanh(), lambda t: t.sigmoid(), lambda t: t.relu(),
            lambda t: (t * t + 1.0).sqrt(), lambda t: t.abs(),
            lambda t: t.clip(-2.0, 2.0), lambda t: (t * 0.3).exp(),
            lambda t: -t, lambda t: t ** 2,
        ]
        binary = [
            lambda a, b: a + b, lambda a, b: a - b, lambda a, b: a * b,
            lambda a, b: a / (b * b + 1.0), lambda a, b: a * 0.5 + b,
        ]
        for seed in range(8):
            def build(rng, seed=seed):
                oprng = np.random.default_rng(100 + seed)
                x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
                y = Tensor(rng.normal(size=(4,)), requires_grad=True)
                live = [x, x * 1.0 + y, (x + y).tanh()]
                for _ in range(12):
                    if oprng.random() < 0.5 or len(live) < 2:
                        t = live[oprng.integers(len(live))]
                        live.append(unary[oprng.integers(len(unary))](t))
                    else:
                        a = live[oprng.integers(len(live))]
                        b = live[oprng.integers(len(live))]
                        live.append(binary[oprng.integers(len(binary))](a, b))
                total = live[-1]
                for t in live[-4:-1]:
                    total = total + t
                total.sum().backward()
                return [x.grad, y.grad]

            assert_bitwise(*both_modes(build))


class TestStructuralOpsEquivalence:
    def test_matmul_mlp(self):
        def build(rng):
            x = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
            w1 = Tensor(rng.normal(size=(5, 7)) * 0.3, requires_grad=True)
            b1 = Tensor(rng.normal(size=(7,)) * 0.1, requires_grad=True)
            w2 = Tensor(rng.normal(size=(7, 2)) * 0.3, requires_grad=True)
            h = (x @ w1 + b1).tanh()
            ((h @ w2) ** 2).sum().backward()
            return [x.grad, w1.grad, b1.grad, w2.grad]

        assert_bitwise(*both_modes(build, n_grads=4))

    def test_broadcasting_reductions_indexing(self):
        def build(rng):
            x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
            b = Tensor(rng.normal(size=(3,)), requires_grad=True)
            s = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
            h = (x + b) * s
            u = h.sum(axis=0, keepdims=True) + h.max(axis=1, keepdims=True)
            v = u.reshape((-1,))[2:5]
            w = Tensor.concatenate([v, v * 2.0], axis=0)
            t = Tensor.stack([w, -w], axis=0)
            (t.transpose((1, 0)) ** 2).sum().backward()
            return [x.grad, b.grad, s.grad]

        assert_bitwise(*both_modes(build, n_grads=3))

    def test_multi_consumer_accumulation_order(self):
        """A tensor feeding many consumers exercises ordered accumulation."""

        def build(rng):
            x = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
            h = x.tanh()
            a = (h * 2.0).exp()
            b = (h + 1.0).sigmoid()
            c = h * h
            d = h / (c + 1.0)
            (a * b + c * d).sum().backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_astype_and_scalar_root(self):
        def build(rng):
            x = Tensor(rng.normal(size=(3,)).astype(np.float32),
                       requires_grad=True)
            y = x.astype(np.float64)
            ((y * y).sum() * 2.0).backward()
            return [x.grad]

        # Under the default float64 policy a float32 leaf accumulates in
        # float64 (grad_dtype promotion) — both modes must agree on that.
        ref, com = both_modes(build)
        assert_bitwise(ref, com)
        assert ref[0].dtype == np.float64


class TestPrecisionPolicies:
    @pytest.mark.parametrize("policy", ["float64", "float32", "mixed32"])
    def test_policy_equivalence(self, policy):
        def build(rng):
            with use_precision(policy):
                x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
                w = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
                ((x @ w).relu().exp() * x.sigmoid()).sum().backward()
                return [x.grad, w.grad]

        assert_bitwise(*both_modes(build))

    def test_cross_dtype_chain(self):
        """float32 and float64 tensors in one graph: the compiled run must
        respect every want-dtype boundary the reference walk casts at."""

        def build(rng):
            with use_precision("float32"):
                x32 = Tensor(rng.normal(size=(5,)).astype(np.float32),
                             requires_grad=True)
                x64 = Tensor(rng.normal(size=(5,)), requires_grad=True)
                ((x32 * x64).tanh().exp() * x32).sum().backward()
                return [x32.grad, x64.grad]

        ref, com = both_modes(build)
        assert_bitwise(ref, com)
        assert ref[0].dtype == np.float32 and ref[1].dtype == np.float64


class TestBackwardSemantics:
    def test_retain_graph_accumulation(self):
        def build(rng):
            x = Tensor(rng.normal(size=(4,)), requires_grad=True)
            y = (x * x).tanh().sum()
            y.backward(retain_graph=True)
            y.backward(retain_graph=True)
            y.backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_preexisting_grad_accumulates(self):
        def build(rng):
            x = Tensor(rng.normal(size=(4,)), requires_grad=True)
            (x * 3.0).sum().backward()
            (x.tanh()).sum().backward()  # accumulates into existing .grad
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_intermediates_carry_no_grad_after_backward(self):
        """Satellite regression: cotangents are released on consume."""
        for compiled in (False, True):
            with G.tape_compile(compiled):
                x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
                h = (x * 2.0).tanh()
                u = h * h
                z = u.sum()
                z.backward()
                assert x.grad is not None
                assert h.grad is None
                assert u.grad is None
                assert z.grad is None

    def test_seed_array_is_not_mutated(self):
        seed = np.full((3,), 2.0)
        keep = seed.copy()
        x = Tensor(np.arange(3.0), requires_grad=True)
        y = (x * x).tanh()
        y.backward(seed)
        assert np.array_equal(seed, keep)

    def test_plan_buffers_do_not_leak_into_leaf_grads(self):
        """Two runs of the same cached plan must not share .grad storage."""
        def run():
            x = Tensor(np.arange(4.0), requires_grad=True)
            w = Tensor(np.ones(4), requires_grad=True)
            # Two contributions into w force the accumulation buffer path.
            ((x * w).tanh() + w * 0.5).sum().backward()
            return x.grad, w.grad
        g1 = run()
        g2 = run()
        for a, b in zip(g1, g2):
            assert a is not b
            assert np.array_equal(a, b)
        g1[0][...] = -1.0  # mutating run 1's grads must not corrupt run 2's
        assert not np.array_equal(g1[0], g2[0])


class TestFunctionalGradEquivalence:
    def test_grad_matches_reference(self):
        def build(rng):
            x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
            y = ((x @ w).tanh() * 3.0).sigmoid().sum()
            gx, gw = nn.grad(y, (x, w))
            return [gx.data, gw.data]

        assert_bitwise(*both_modes(build, n_grads=2))

    def test_grad_of_intermediate_target(self):
        def build(rng):
            x = Tensor(rng.normal(size=(4,)), requires_grad=True)
            h = x.tanh()
            y = (h * h).sum()
            gh, gx = nn.grad(y, (h, x), retain_graph=True)
            return [gh.data, gx.data]

        assert_bitwise(*both_modes(build, n_grads=2))

    def test_grad_allow_unused(self):
        for compiled in (False, True):
            with G.tape_compile(compiled):
                x = Tensor(np.arange(3.0), requires_grad=True)
                z = Tensor(np.arange(3.0), requires_grad=True)
                y = (x * x).sum()
                gx, gz = nn.grad(y, (x, z), allow_unused=True)
                assert gz is None
                np.testing.assert_allclose(gx.data, 2 * np.arange(3.0))

    def test_hvp_matches_reference(self):
        def build(rng):
            x = Tensor(rng.normal(size=(6,)), requires_grad=True)
            v = Tensor(rng.normal(size=(6,)))
            y = (x.tanh() * x).sum()
            (h,) = nn.hvp(y, (x,), (v,))
            return [h.data]

        assert_bitwise(*both_modes(build))

    def test_grad_does_not_touch_grad_buffers(self):
        with G.tape_compile(True):
            x = Tensor(np.arange(4.0), requires_grad=True)
            h = x.sigmoid()
            nn.grad((h * h).sum(), [x])
            assert x.grad is None and h.grad is None


class TestHybridEquivalence:
    def test_scalable_qae_train_step_bitwise(self):
        from repro.models import ScalableQuantumAE

        def build(rng):
            model = ScalableQuantumAE(
                input_dim=16, n_patches=2, n_layers=1,
                rng=np.random.default_rng(7),
            )
            x = Tensor(rng.normal(size=(3, 16)), requires_grad=True)
            loss = mse_loss(model(x).reconstruction, x)
            loss.backward()
            return [p.grad for p in model.parameters()] + [x.grad]

        assert_bitwise(*both_modes(build))

    def test_quantum_layer_bitwise(self):
        from repro.qnn import QuantumLayer
        from repro.quantum.circuit import Circuit

        def build(rng):
            circuit = Circuit(3)
            circuit.amplitude_embedding(8)
            circuit.strongly_entangling_layers(1)
            circuit.measure_expval()
            layer = QuantumLayer(circuit, rng=np.random.default_rng(5))
            x = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
            (layer(x) ** 2).sum().backward()
            return [p.grad for p in layer.parameters()] + [x.grad]

        assert_bitwise(*both_modes(build))


class TestPlanCache:
    def _step(self, n=4, *, freeze=False, branch=False):
        x = Tensor(np.arange(float(n)), requires_grad=True)
        w = Tensor(np.ones(n), requires_grad=True)
        if freeze:
            w.requires_grad = False
        if branch:
            with no_grad():
                h = x * 2.0
            y = (h * w).tanh().sum()
        else:
            y = (x * w).tanh().sum()
        y.backward()

    def test_steps_2_plus_hit_the_cache(self):
        with G.tape_compile(True):
            self._step()
            first = G.plan_cache_stats()
            for _ in range(5):
                self._step()
            after = G.plan_cache_stats()
        assert first["misses"] == 1 and first["hits"] == 0
        assert after["misses"] == 1  # never re-lowered
        assert after["hits"] == 5
        assert after["size"] == 1

    def test_shape_change_recompiles(self):
        with G.tape_compile(True):
            self._step(4)
            self._step(5)
            stats = G.plan_cache_stats()
        assert stats["misses"] == 2 and stats["size"] == 2

    def test_dtype_policy_change_recompiles(self):
        def once():
            x = Tensor(np.arange(4.0, dtype=np.float32), requires_grad=True)
            (x * x).sum().backward()

        with G.tape_compile(True):
            with use_precision("float32"):
                once()
            with use_precision("mixed32"):
                once()  # same array dtypes, different grad accumulation
            stats = G.plan_cache_stats()
        assert stats["misses"] == 2

    def test_requires_grad_flip_recompiles(self):
        with G.tape_compile(True):
            self._step()
            self._step(freeze=True)
            stats = G.plan_cache_stats()
        assert stats["misses"] == 2

    def test_no_grad_branch_recompiles(self):
        with G.tape_compile(True):
            self._step()
            self._step(branch=True)
            self._step(branch=True)
            stats = G.plan_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 1

    def test_grad_and_backward_plans_are_distinct(self):
        with G.tape_compile(True):
            x = Tensor(np.arange(3.0), requires_grad=True)
            y = (x * x).sum()
            nn.grad(y, [x], retain_graph=True)
            y.backward()
            stats = G.plan_cache_stats()
        assert stats["misses"] == 2

    def test_clear_plan_cache(self):
        with G.tape_compile(True):
            self._step()
        G.clear_plan_cache()
        stats = G.plan_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "size": 0}


class TestToggle:
    def test_context_manager_restores(self):
        prev = G.tape_compile_enabled()
        with G.tape_compile(not prev):
            assert G.tape_compile_enabled() is (not prev)
        assert G.tape_compile_enabled() is prev

    def test_set_tape_compile_returns_previous(self):
        prev = G.set_tape_compile(False)
        try:
            assert G.tape_compile_enabled() is False
        finally:
            G.set_tape_compile(prev)

    def test_disabled_mode_compiles_nothing(self):
        with G.tape_compile(False):
            x = Tensor(np.arange(3.0), requires_grad=True)
            (x * x).sum().backward()
        assert G.plan_cache_stats()["size"] == 0


class TestZeroGradSetToNone:
    def _params(self):
        p = Tensor(np.arange(3.0), requires_grad=True)
        (p * p).sum().backward()
        return p

    def test_default_sets_none(self):
        p = self._params()
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None

    def test_set_to_none_false_zeroes_in_place(self):
        p = self._params()
        buf = p.grad
        SGD([p], lr=0.1).zero_grad(set_to_none=False)
        assert p.grad is buf
        assert np.array_equal(buf, np.zeros(3))

    def test_set_to_none_false_with_no_grad_is_noop(self):
        p = Tensor(np.arange(3.0), requires_grad=True)
        SGD([p], lr=0.1).zero_grad(set_to_none=False)
        assert p.grad is None

    def test_training_equivalence_across_modes(self):
        """A short SGD loop lands on identical parameters either way."""

        def train(compiled):
            rng = np.random.default_rng(3)
            w = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
            x = Tensor(rng.normal(size=(8, 4)))
            opt = SGD([w], lr=0.05)
            with G.tape_compile(compiled):
                for _ in range(5):
                    opt.zero_grad(set_to_none=True)
                    ((x @ w).tanh() ** 2).sum().backward()
                    opt.step()
            return w.data.copy()

        assert np.array_equal(train(False), train(True))


class TestViewFreshnessInheritance:
    """Transpose/reshape/astype VJPs return views of the incoming
    cotangent; the plan forwards the *incoming* ownership through them
    instead of pessimistically treating every view as alias."""

    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: (x.T * 2.0).tanh().sum(),
            lambda x: (x.reshape(20) * 1.5).sigmoid().sum(),
            lambda x: (x.T.reshape(20).reshape(5, 4).T * 0.7).sum(),
            lambda x: (x.astype("float64") * 3.0).tanh().sum(),
        ],
        ids=["transpose", "reshape", "transpose_reshape_mix", "astype"],
    )
    def test_view_chains_bitwise(self, fn):
        def build(rng):
            x = Tensor(
                rng.normal(size=(4, 5)).astype(np.float32),
                requires_grad=True,
            )
            fn(x).backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_same_base_consumed_through_two_views(self):
        """Two view edges off one tensor must not double-claim a mutable
        cotangent buffer."""

        def build(rng):
            x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
            ((x.T * 2.0).tanh() + (x.reshape(16).sigmoid()
                                   .reshape(4, 4))).sum().backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_view_into_scratch_accumulation(self):
        """A view cotangent that lands on a multi-contribution slot goes
        through scratch accumulation without corrupting either source."""

        def build(rng):
            x = Tensor(rng.normal(size=(3, 7)), requires_grad=True)
            y = (x * 1.3).tanh()
            (y.T.sum() + (y * y).sum()).backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))


class TestMatmulOutEdges:
    """2-d matmul VJPs write into plan-owned edge buffers; the GEMM and
    the gradients must stay bit-identical, and reused buffers must never
    leak values between walks."""

    def _mlp_grads(self, rng, dtype=np.float64):
        x = Tensor(rng.normal(size=(6, 8)).astype(dtype))
        w1 = Tensor(
            rng.normal(size=(8, 10)).astype(dtype), requires_grad=True
        )
        w2 = Tensor(
            rng.normal(size=(10, 4)).astype(dtype), requires_grad=True
        )
        ((x @ w1).tanh() @ w2).sum().backward()
        return [w1.grad, w2.grad]

    def test_two_layer_mlp_bitwise(self):
        assert_bitwise(*both_modes(lambda rng: self._mlp_grads(rng)))

    def test_float32_mlp_bitwise(self):
        assert_bitwise(
            *both_modes(lambda rng: self._mlp_grads(rng, np.float32))
        )

    def test_mixed_dtype_matmul_falls_back_bitwise(self):
        """f32 @ f64 promotes: the natural GEMM dtype differs from one
        target's accumulation dtype, so lowering must skip the out= form
        there and stay bit-identical."""

        def build(rng):
            a = Tensor(
                rng.normal(size=(5, 6)).astype(np.float32),
                requires_grad=True,
            )
            b = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
            (a @ b).tanh().sum().backward()
            return [a.grad, b.grad]

        assert_bitwise(*both_modes(build))

    def test_edge_buffers_reused_not_stale(self):
        """Same plan, three walks with different data: each walk's
        gradients must match a fresh uncompiled walk (a stale edge buffer
        would poison walks 2+), and the plan must allocate its edge
        buffers exactly once."""
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(6, 8)))
        w1 = Tensor(rng.normal(size=(8, 10)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(10, 4)), requires_grad=True)

        def loss():
            return ((x @ w1).tanh() @ w2).sum()

        buf_ids = None
        with G.tape_compile(True):
            for _ in range(3):
                w1.grad = w2.grad = None
                loss().backward()
                got = [w1.grad.copy(), w2.grad.copy()]
                with G.tape_compile(False):
                    w1.grad = w2.grad = None
                    loss().backward()
                assert_bitwise([w1.grad, w2.grad], got)
                (plan,) = G._PLAN_CACHE.values()
                assert plan._edge_bufs, "expected matmul out= edges"
                ids = {k: id(v) for k, v in plan._edge_bufs.items()}
                assert buf_ids is None or ids == buf_ids
                buf_ids = ids
                w1.data += 0.1  # new values, same structure
                x.data *= 1.01

    def test_grad_mode_untouched_by_edge_buffers(self):
        """Functional grad() results are user-visible; they must be
        fresh arrays, not plan scratch that the next walk overwrites."""
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(6, 8)))
        w = Tensor(rng.normal(size=(8, 4)), requires_grad=True)
        h = (x @ w).tanh()

        with G.tape_compile(True):
            (g1,) = nn.grad((h * h).sum(), [w])
            keep = g1.data.copy()
            h2 = (x @ w).tanh()
            nn.grad((h2 * h2).sum(), [w])
        assert np.array_equal(g1.data, keep)


class TestKernelTempBuffers:
    """tanh/sigmoid/pow_const kernels stage their intermediate in a
    plan-owned temp; results must be bit-identical and stable across
    reuse."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_staged_kernels_bitwise(self, dtype):
        def build(rng):
            x = Tensor(
                (rng.random(size=(8, 9)) + 0.5).astype(dtype),
                requires_grad=True,
            )
            h = x
            for _ in range(4):
                h = (h.tanh() * 1.1).sigmoid() ** 2.5
            h.sum().backward()
            return [x.grad]

        assert_bitwise(*both_modes(build))

    def test_temp_reuse_across_walks_not_stale(self):
        rng = np.random.default_rng(13)
        x = Tensor(rng.normal(size=(7, 7)), requires_grad=True)

        def loss():
            return ((x * 0.9).tanh().sigmoid() ** 3).sum()

        with G.tape_compile(True):
            for _ in range(3):
                x.grad = None
                loss().backward()
                got = [x.grad.copy()]
                with G.tape_compile(False):
                    x.grad = None
                    loss().backward()
                assert_bitwise([x.grad], got)
                plans = list(G._PLAN_CACHE.values())
                assert any(p._tmp_bufs for p in plans), (
                    "expected a staged kernel temp buffer"
                )
                x.data = rng.normal(size=(7, 7))
