"""Tests for the contiguous flat parameter/gradient layouts."""

import numpy as np
import pytest

from repro.models import ClassicalAE, build_model
from repro.nn import (
    FlatLayout,
    Module,
    Parameter,
    gradient_layout,
    parameter_layout,
    unique_named_parameters,
)
from repro.nn.flat import read_parameters, write_gradients, write_parameters
from repro.nn.precision import use_precision


class TiedModule(Module):
    """Two dotted names for one parameter (weight tying)."""

    def __init__(self):
        super().__init__()
        shared = Parameter(np.arange(6.0).reshape(2, 3))
        self.first = shared
        self.second = shared
        self.own = Parameter(np.ones(4, dtype=np.float32))


class TestLayout:
    def test_offsets_are_aligned_and_ordered(self):
        layout = FlatLayout.from_specs([
            ("a", (3,), np.float32),      # 12 bytes -> next slot at 16
            ("b", (2, 2), np.float64),    # 32 bytes -> next slot at 48
            ("c", (1,), np.complex128),
        ])
        offsets = [slot.offset for slot in layout.slots]
        assert offsets == [0, 16, 48]
        assert all(offset % 16 == 0 for offset in offsets)
        assert layout.nbytes % 16 == 0
        assert layout.nbytes >= offsets[-1] + layout.slots[-1].nbytes

    def test_views_round_trip_values(self):
        layout = FlatLayout.from_specs([
            ("w", (2, 3), np.float64),
            ("b", (3,), np.float32),
        ])
        buffer = bytearray(layout.nbytes)
        views = layout.views(buffer)
        views["w"][...] = np.arange(6.0).reshape(2, 3)
        views["b"][...] = [1.0, 2.0, 3.0]
        again = layout.views(buffer)
        np.testing.assert_array_equal(again["w"], np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(again["b"],
                                      np.array([1, 2, 3], dtype=np.float32))

    def test_base_offset_tiles_independent_regions(self):
        layout = FlatLayout.from_specs([("x", (4,), np.float64)])
        buffer = bytearray(3 * layout.nbytes)
        for region in range(3):
            layout.views(buffer, base=region * layout.nbytes)["x"][...] = region
        for region in range(3):
            view = layout.views(buffer, base=region * layout.nbytes)["x"]
            np.testing.assert_array_equal(view, np.full(4, float(region)))

    def test_layout_is_picklable(self):
        import pickle

        model = ClassicalAE(input_dim=8, latent_dim=2,
                            rng=np.random.default_rng(0))
        layout = parameter_layout(model)
        clone = pickle.loads(pickle.dumps(layout))
        assert clone.specs() == layout.specs()
        assert clone.nbytes == layout.nbytes


class TestModuleLayouts:
    def test_parameter_layout_covers_every_unique_parameter(self):
        model = build_model("ae", 16, 4, 2, 4, seed=0)
        layout = parameter_layout(model)
        names = [slot.name for slot in layout.slots]
        assert names == [n for n, _ in unique_named_parameters(model)]
        for slot, (_, param) in zip(layout.slots,
                                    unique_named_parameters(model)):
            assert slot.shape == param.data.shape
            assert slot.dtype == param.data.dtype

    def test_tied_parameters_get_one_slot(self):
        module = TiedModule()
        layout = parameter_layout(module)
        assert len(layout.slots) == 2  # shared + own, not 3
        assert layout.slots[0].name == "first"

    def test_gradient_layout_promotes_under_mixed32(self):
        module = TiedModule()  # has a float32 parameter
        with use_precision("mixed32"):
            layout = gradient_layout(module)
        by_name = {slot.name: slot for slot in layout.slots}
        assert by_name["own"].dtype == np.float64
        with use_precision("float32"):
            layout32 = gradient_layout(module)
        assert {s.name: s.dtype for s in layout32.slots}["own"] == np.float32


class TestTransport:
    def test_write_read_parameters_round_trip(self):
        source = build_model("ae", 16, 4, 2, 4, seed=1)
        target = build_model("ae", 16, 4, 2, 4, seed=2)
        layout = parameter_layout(source)
        buffer = bytearray(layout.nbytes)
        write_parameters(source, layout, buffer)
        identities = [id(p) for p in target.parameters()]
        read_parameters(target, layout, buffer)
        assert [id(p) for p in target.parameters()] == identities
        for (_, a), (_, b) in zip(source.named_parameters(),
                                  target.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_write_gradients_reports_presence(self):
        module = TiedModule()
        layout = gradient_layout(module)
        buffer = bytearray(layout.nbytes)
        module.first.grad = np.full((2, 3), 2.0)
        module.own.grad = None
        present = write_gradients(module, layout, buffer)
        assert present == ("first",)
        views = layout.views(buffer)
        np.testing.assert_array_equal(views["first"], np.full((2, 3), 2.0))

    def test_transport_is_bit_exact(self):
        model = build_model("ae", 16, 4, 2, 4, seed=3)
        layout = parameter_layout(model)
        buffer = bytearray(layout.nbytes)
        write_parameters(model, layout, buffer)
        clone = build_model("ae", 16, 4, 2, 4, seed=4)
        read_parameters(clone, layout, buffer)
        for (_, a), (_, b) in zip(model.named_parameters(),
                                  clone.named_parameters()):
            assert (a.data == b.data).all()
