"""Tests for npz checkpointing of modules."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    ReLU,
    Sequential,
    Tensor,
    load_module,
    module_fingerprint,
    save_module,
)


def model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))


class TestSaveLoad:
    def test_roundtrip_restores_outputs(self, tmp_path):
        source = model(seed=1)
        path = save_module(source, tmp_path / "ckpt")
        target = model(seed=99)
        load_module(target, path)
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_npz_suffix_appended(self, tmp_path):
        path = save_module(model(), tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_metadata_roundtrip(self, tmp_path):
        path = save_module(model(), tmp_path / "m", metadata={"epoch": 7,
                                                              "loss": 0.5})
        meta = load_module(model(), path)
        assert meta == {"epoch": 7, "loss": 0.5}

    def test_load_accepts_path_without_suffix(self, tmp_path):
        save_module(model(), tmp_path / "m")
        meta = load_module(model(), tmp_path / "m")
        assert meta == {}

    def test_shape_mismatch_rejected(self, tmp_path):
        path = save_module(model(), tmp_path / "m")
        wrong = Sequential(Linear(4, 9, rng=np.random.default_rng(0)))
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)

    def test_quantum_model_roundtrip(self, tmp_path):
        from repro.models import ScalableQuantumAE

        source = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                   rng=np.random.default_rng(3))
        path = save_module(source, tmp_path / "sq")
        target = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                   rng=np.random.default_rng(77))
        load_module(target, path)
        assert module_fingerprint(source) == module_fingerprint(target)

    def test_trained_model_roundtrip_preserves_samples(self, tmp_path):
        from repro.models import ClassicalVAE

        source = ClassicalVAE(input_dim=16, latent_dim=3, hidden_dims=(8,),
                              rng=np.random.default_rng(4))
        path = save_module(source, tmp_path / "vae")
        target = ClassicalVAE(input_dim=16, latent_dim=3, hidden_dims=(8,),
                              rng=np.random.default_rng(5))
        load_module(target, path)
        a = source.sample(3, np.random.default_rng(0))
        b = target.sample(3, np.random.default_rng(0))
        np.testing.assert_allclose(a, b)


class TestDtypeRoundTrip:
    def test_float32_checkpoint_rehydrates_as_float32(self, tmp_path):
        rng = np.random.default_rng(11)
        source = Sequential(
            Linear(4, 8, rng=rng, dtype="float32"),
            ReLU(),
            Linear(8, 4, rng=rng, dtype="float32"),
        )
        path = save_module(source, tmp_path / "f32")
        target = Sequential(
            Linear(4, 8, rng=np.random.default_rng(12), dtype="float32"),
            ReLU(),
            Linear(8, 4, rng=np.random.default_rng(12), dtype="float32"),
        )
        load_module(target, path)
        for __, param in target.named_parameters():
            assert param.data.dtype == np.float32
        assert module_fingerprint(source) == module_fingerprint(target)

    def test_float32_checkpoint_preserved_into_float64_module(self, tmp_path):
        # The checkpoint's dtype wins: no implicit float64 rehydration.
        src = Sequential(Linear(3, 3, rng=np.random.default_rng(13),
                                dtype="float32"))
        path = save_module(src, tmp_path / "x")
        dst = Sequential(Linear(3, 3, rng=np.random.default_rng(14)))
        assert dst.layers[0].weight.data.dtype == np.float64
        # Loading across widths now warns naming both dtypes — the module
        # executes at its construction precision, not the checkpoint's.
        with pytest.warns(UserWarning, match=r"float32 parameters but the "
                                             r"module was built float64"):
            load_module(dst, path)
        assert dst.layers[0].weight.data.dtype == np.float32

    def test_float64_checkpoint_unchanged(self, tmp_path):
        src = model(seed=15)
        path = save_module(src, tmp_path / "y")
        dst = model(seed=16)
        load_module(dst, path)
        for __, param in dst.named_parameters():
            assert param.data.dtype == np.float64

    def test_quantum_float32_model_roundtrip(self, tmp_path):
        from repro.models import ScalableQuantumAE

        source = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                   rng=np.random.default_rng(17),
                                   dtype="float32")
        path = save_module(source, tmp_path / "sq32")
        target = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                   rng=np.random.default_rng(18),
                                   dtype="float32")
        load_module(target, path)
        assert module_fingerprint(source) == module_fingerprint(target)
        x = np.abs(np.random.default_rng(0).normal(size=(2, 16))) + 0.1
        np.testing.assert_allclose(
            source.reconstruct(x), target.reconstruct(x)
        )
        assert source.reconstruct(x).dtype == np.float32


class TestFingerprint:
    def test_identical_models_match(self):
        assert module_fingerprint(model(seed=2)) == module_fingerprint(
            model(seed=2)
        )

    def test_different_weights_differ(self):
        assert module_fingerprint(model(seed=2)) != module_fingerprint(
            model(seed=3)
        )

    def test_changes_after_training_step(self):
        from repro.nn import Adam, functional as F

        m = model(seed=6)
        before = module_fingerprint(m)
        opt = Adam(list(m.parameters()), lr=0.1)
        F.mse_loss(m(Tensor(np.ones((1, 4)))), Tensor(np.zeros((1, 4)))).backward()
        opt.step()
        assert module_fingerprint(m) != before
