"""Tests for modules (Linear/Sequential), losses, and optimizers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    Module,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tensor,
    functional as F,
    heterogeneous_adam,
)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_forward_value(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight.data = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.data = np.array([0.5, -0.5])
        out = layer(Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[3.5, 6.5]])

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_param_count(self):
        assert Linear(64, 32).num_parameters() == 64 * 32 + 32

    def test_gradients_flow(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestModuleSystem:
    def test_named_parameters(self):
        model = Sequential(Linear(4, 3), ReLU(), Linear(3, 2))
        names = dict(model.named_parameters())
        assert "layers" not in names
        assert {"0.weight", "0.bias", "2.weight", "2.bias"} == set(names)

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(3)
        model = Sequential(Linear(4, 3, rng=rng), Linear(3, 2, rng=rng))
        state = model.state_dict()
        model2 = Sequential(
            Linear(4, 3, rng=np.random.default_rng(99)),
            Linear(3, 2, rng=np.random.default_rng(98)),
        )
        model2.load_state_dict(state)
        x = Tensor(np.ones((1, 4)))
        np.testing.assert_allclose(model(x).data, model2(x).data)

    def test_load_state_dict_missing_key(self):
        model = Sequential(Linear(2, 2))
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        model = Sequential(Linear(2, 2))
        state = model.state_dict()
        state["0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_parameter_groups(self):
        class Hybrid(Module):
            def __init__(self):
                super().__init__()
                self.q = Parameter(np.zeros(5), group="quantum")
                self.c = Linear(2, 2)

        groups = Hybrid().parameter_groups()
        assert {p.size for p in groups["quantum"]} == {5}
        assert sum(p.size for p in groups["classical"]) == 6

    def test_train_eval_mode(self):
        model = Sequential(Linear(2, 2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = Linear(2, 2)
        model(Tensor(np.ones((1, 2)))).sum().backward()
        model.zero_grad()
        assert model.weight.grad is None


class TestLosses:
    def test_mse(self):
        loss = F.mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_mse_gradient(self):
        pred = Tensor([3.0], requires_grad=True)
        F.mse_loss(pred, Tensor([1.0])).backward()
        np.testing.assert_allclose(pred.grad, [4.0])

    def test_l1(self):
        loss = F.l1_loss(Tensor([2.0, -2.0]), Tensor([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.0)

    def test_bce_matches_formula(self):
        p, t = 0.7, 1.0
        loss = F.bce_loss(Tensor([p]), Tensor([t]))
        np.testing.assert_allclose(loss.item(), -np.log(p), rtol=1e-10)

    def test_gaussian_kl_zero_at_prior(self):
        mu = Tensor(np.zeros((3, 4)))
        logvar = Tensor(np.zeros((3, 4)))
        np.testing.assert_allclose(F.gaussian_kl(mu, logvar).item(), 0.0)

    def test_gaussian_kl_positive(self):
        rng = np.random.default_rng(0)
        mu = Tensor(rng.normal(size=(5, 4)))
        logvar = Tensor(rng.normal(size=(5, 4)))
        assert F.gaussian_kl(mu, logvar).item() > 0

    def test_gaussian_kl_closed_form(self):
        mu = Tensor([[1.0, 0.0]])
        logvar = Tensor([[0.0, np.log(2.0)]])
        expected = 0.5 * (1.0 + (2.0 - np.log(2.0) - 1.0))
        np.testing.assert_allclose(F.gaussian_kl(mu, logvar).item(), expected)

    def test_softmax_normalizes(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_softplus_positive_and_smooth(self):
        x = Tensor([-50.0, 0.0, 50.0])
        y = F.softplus(x)
        assert (y.data >= 0).all()
        np.testing.assert_allclose(y.data[1], np.log(2.0), rtol=1e-10)
        np.testing.assert_allclose(y.data[2], 50.0, rtol=1e-10)


class TestOptimizers:
    def test_sgd_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_sgd_momentum(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-2.9])

    def test_adam_first_step_size(self):
        # With a constant gradient, Adam's first step is exactly lr.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(p.data, [1.0 - 0.01], rtol=1e-6)

    def test_adam_converges_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            loss = (p * p).sum()
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_param_groups_distinct_lrs(self):
        a = Parameter(np.array([0.0]))
        b = Parameter(np.array([0.0]))
        opt = SGD([{"params": [a], "lr": 0.1}, {"params": [b], "lr": 1.0}], lr=0.5)
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(a.data, [-0.1])
        np.testing.assert_allclose(b.data, [-1.0])

    def test_heterogeneous_adam_builder(self):
        class Hybrid(Module):
            def __init__(self):
                super().__init__()
                self.q = Parameter(np.zeros(3), group="quantum")
                self.c = Linear(2, 2)

        opt = heterogeneous_adam(Hybrid(), quantum_lr=0.03, classical_lr=0.01)
        lrs = sorted(g["lr"] for g in opt.param_groups)
        assert lrs == [0.01, 0.03]

    def test_optimizer_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad set: must not raise or move the parameter
        np.testing.assert_allclose(p.data, [1.0])


class TestTraining:
    def test_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float))
        y = Tensor(np.array([[0.0], [1.0], [1.0], [0.0]]))
        model = Sequential(
            Linear(2, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng), Sigmoid()
        )
        opt = Adam(list(model.parameters()), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss = F.mse_loss(model(x), y)
            loss.backward()
            opt.step()
        assert F.mse_loss(model(x), y).item() < 0.01
