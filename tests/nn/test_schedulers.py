"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    Parameter,
    SGD,
    StepLR,
)


def make_optimizer(lrs=(0.1,)):
    groups = [
        {"params": [Parameter(np.zeros(1))], "lr": lr} for lr in lrs
    ]
    return SGD(groups, lr=lrs[0])


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_optimizer()
        scheduler = StepLR(opt, step_size=2, gamma=0.5)
        observed = []
        for _ in range(4):
            scheduler.step()
            observed.append(opt.param_groups[0]["lr"])
        np.testing.assert_allclose(observed, [0.1, 0.05, 0.05, 0.025])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestExponentialLR:
    def test_geometric_decay(self):
        opt = make_optimizer()
        scheduler = ExponentialLR(opt, gamma=0.9)
        scheduler.step()
        scheduler.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.1 * 0.81)


class TestCosineAnnealing:
    def test_endpoints(self):
        opt = make_optimizer()
        scheduler = CosineAnnealingLR(opt, t_max=10)
        assert scheduler.get_factor(0) == pytest.approx(1.0)
        assert scheduler.get_factor(10) == pytest.approx(0.0, abs=1e-12)

    def test_midpoint(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=10)
        assert scheduler.get_factor(5) == pytest.approx(0.5)

    def test_eta_min_floor(self):
        opt = make_optimizer()
        scheduler = CosineAnnealingLR(opt, t_max=4, eta_min_factor=0.1)
        for _ in range(4):
            scheduler.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.1 * 0.1)

    def test_clamps_past_t_max(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=3)
        assert scheduler.get_factor(99) == scheduler.get_factor(3)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestHeterogeneousGroups:
    def test_groups_keep_their_ratio(self):
        opt = make_optimizer(lrs=(0.03, 0.01))
        scheduler = ExponentialLR(opt, gamma=0.5)
        scheduler.step()
        lrs = scheduler.current_lrs()
        assert lrs[0] == pytest.approx(0.015)
        assert lrs[1] == pytest.approx(0.005)
        assert lrs[0] / lrs[1] == pytest.approx(3.0)

    def test_works_with_adam(self):
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.1)
        scheduler = StepLR(opt, step_size=1, gamma=0.1)
        param.grad = np.array([1.0])
        opt.step()
        scheduler.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.01)
