"""Unit tests for the autodiff Tensor: ops, broadcasting, graph mechanics."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad


def finite_diff(fn, x, eps=1e-6):
    """Central finite-difference gradient of scalar fn at numpy point x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = grad.reshape(-1)
    xf = x.reshape(-1)
    for i in range(xf.size):
        orig = xf[i]
        xf[i] = orig + eps
        hi = fn(x)
        xf[i] = orig - eps
        lo = fn(x)
        xf[i] = orig
        flat[i] = (hi - lo) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (1.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-0.25])

    def test_scalar_broadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))


class TestMatmul:
    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_matmul_matches_finite_diff(self):
        rng = np.random.default_rng(1)
        a0 = rng.normal(size=(2, 3))
        b0 = rng.normal(size=(3, 2))

        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        fd_a = finite_diff(lambda x: ((x @ b0) ** 2).sum(), a0.copy())
        fd_b = finite_diff(lambda x: ((a0 @ x) ** 2).sum(), b0.copy())
        np.testing.assert_allclose(a.grad, fd_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, fd_b, atol=1e-5)

    def test_vector_matmul(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        m = Tensor([[1.0, 0.0], [0.0, 1.0]], requires_grad=True)
        (a @ m).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestElementwise:
    @pytest.mark.parametrize(
        "op,deriv",
        [
            ("exp", lambda x: np.exp(x)),
            ("log", lambda x: 1.0 / x),
            ("sqrt", lambda x: 0.5 / np.sqrt(x)),
            ("sigmoid", lambda x: (s := 1 / (1 + np.exp(-x))) * (1 - s)),
            ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ],
    )
    def test_unary_derivatives(self, op, deriv):
        x0 = np.array([0.5, 1.5, 2.5])
        x = Tensor(x0, requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, deriv(x0), rtol=1e-10)

    def test_relu_gradient_masks_negatives(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_abs(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])

    def test_clip_gradient(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.sum(axis=1, keepdims=True) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 2.0))

    def test_mean(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1.0 / 20))

    def test_mean_axis(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1.0 / 5))

    def test_max(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_ties_split_gradient(self):
        x = Tensor([5.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestShapes:
    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T
        assert y.shape == (3, 2)
        (y * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_getitem(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_concatenate(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        cat = Tensor.concatenate([a, b])
        assert cat.shape == (3,)
        (cat * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        cat = Tensor.concatenate([a, b], axis=1)
        assert cat.shape == (2, 5)
        cat.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        s = Tensor.stack([a, b])
        assert s.shape == (2, 2)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestBroadcastGrads:
    def test_bias_broadcast(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_row_broadcast_mul(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        s = Tensor(np.full((1, 3), 2.0), requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, np.full((1, 3), 4.0))
        np.testing.assert_allclose(x.grad, np.full((4, 3), 2.0))


class TestGraphMechanics:
    def test_grad_accumulates_on_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x  # x used twice
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_retain_graph_allows_double_backward(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        y.backward(retain_graph=True)
        y.backward(retain_graph=True)
        np.testing.assert_allclose(x.grad, [12.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(100):
            y = y * 1.01
        y.backward()
        np.testing.assert_allclose(x.grad, [1.01**100], rtol=1e-10)
