"""Shared fixtures: seeded random circuits and gradient cross-checks.

The engine property suites (compiled, stacked, differential, precision,
patched) all need the same two ingredients — a seeded random-circuit
generator covering the full lowered gate set, and a parameter-shift
cross-check for adjoint weight gradients.  They used to carry near-identical
private copies; the fixtures below are the one shared implementation.

Both fixtures are session-scoped factory handles (plain functions), so they
compose with hypothesis ``@given`` tests without tripping the
function-scoped-fixture health check.
"""

import numpy as np
import pytest

from repro.quantum import Circuit, Operation, parameter_shift_gradients

ALL_GATES = ["RX", "RY", "RZ", "CRZ", "CNOT", "CZ", "SWAP", "H", "X", "Y", "Z"]

_TWO_QUBIT = {"CRZ", "CNOT", "CZ", "SWAP"}
_ROTATIONS = {"RX", "RY", "RZ"}


def build_random_circuit(
    rng,
    n_wires,
    n_ops,
    embedding="none",
    measurement="expval",
    reupload=False,
    adjacent=False,
):
    """A seeded random circuit over the full lowered gate set.

    Covers every lowering rule the engine has: dense rotation runs, lone
    diagonal/permutation singletons, two-qubit gates, and both embeddings.
    ``reupload`` sprinkles input-sourced rotations through the body so fused
    runs mix batched (per-sample) and shared matrices; ``adjacent`` biases
    single-qubit placement onto neighbouring wires so the scheduler's 4x4
    kron pair merging is exercised hard.
    """
    circuit = Circuit(n_wires)
    if embedding == "amplitude":
        circuit.amplitude_embedding(2**n_wires)
    elif embedding == "angle":
        circuit.angle_embedding(
            n_wires, rotation=str(rng.choice(["RX", "RY", "RZ"]))
        )
    prev_wire = 0
    for _ in range(n_ops):
        name = ALL_GATES[rng.integers(len(ALL_GATES))]
        if name in _TWO_QUBIT and n_wires < 2:
            name = "RY"
        if name in _TWO_QUBIT:
            a, b = rng.choice(n_wires, size=2, replace=False)
            wires = (int(a), int(b))
        else:
            if adjacent and n_wires > 1:
                step = int(rng.integers(-1, 2))
                wire = int(np.clip(prev_wire + step, 0, n_wires - 1))
            else:
                wire = int(rng.integers(n_wires))
            wires = (wire,)
            prev_wire = wire
        if name in _ROTATIONS:
            if reupload and circuit.n_inputs and rng.random() < 0.3:
                source = ("input", int(rng.integers(circuit.n_inputs)))
            else:
                source = ("weight", circuit._new_weight())
        elif name == "CRZ":
            source = ("weight", circuit._new_weight())
        else:
            source = None
        circuit.ops.append(Operation(name, wires, source))
    if measurement == "expval":
        n_meas = int(rng.integers(1, n_wires + 1))
        circuit.measure_expval(
            tuple(sorted(rng.choice(n_wires, n_meas, replace=False).tolist()))
        )
    else:
        circuit.measure_probs()
    return circuit


def assert_gradients_match_shift(
    circuit, inputs, weights, grad_outputs, grad_weights, atol=1e-9, dtype=None
):
    """Adjoint weight gradients must reproduce the parameter-shift rule."""
    shift = parameter_shift_gradients(
        circuit, inputs, weights, grad_outputs, dtype=dtype
    )
    np.testing.assert_allclose(grad_weights, shift, atol=atol)


@pytest.fixture(scope="session")
def random_circuit():
    """Factory handle on :func:`build_random_circuit`."""
    return build_random_circuit


@pytest.fixture(scope="session")
def gradcheck_shift():
    """Factory handle on :func:`assert_gradients_match_shift`."""
    return assert_gradients_match_shift
