"""Tests for shared-memory data-parallel training.

Worker processes cost ~2 s each to spawn on this class of machine (a
fresh interpreter imports the library), so the process-backed tests here
are deliberately few and small; the reduction/layout logic is covered by
cheap in-process tests.
"""

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.models import ClassicalAE, build_model, model_metadata
from repro.nn.precision import precision_from_descriptor, resolve_precision
from repro.quantum.backends import (
    NumpyBackend,
    ThreadedBackend,
    backend_from_descriptor,
)
from repro.training import (
    ParallelTrainStep,
    ShardedTrainStep,
    TrainConfig,
    Trainer,
)
from repro.training.parallel import (
    reduce_gradients,
    reduce_loss_terms,
    shard_weights,
    split_indices,
)


def toy_data(n=24, dim=16, seed=0):
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(4, dim))
    return ArrayDataset(gen.normal(size=(n, 4)) @ base)


def make_model(seed=3):
    return build_model("ae", 16, 4, 2, 4, seed=seed)


class FakeParam:
    def __init__(self, data):
        self.data = data
        self.grad = None


class FakeModule:
    def __init__(self, names):
        self._params = [(n, FakeParam(np.zeros(2))) for n in names]

    def named_parameters(self):
        return iter(self._params)


class TestSharding:
    def test_split_covers_batch_in_order(self):
        indices = np.array([5, 1, 9, 3, 7, 2, 8])
        shards = split_indices(indices, 3)
        np.testing.assert_array_equal(np.concatenate(shards), indices)
        assert [s.size for s in shards] == [3, 2, 2]

    def test_split_drops_empty_shards(self):
        shards = split_indices(np.array([4, 2]), 5)
        assert len(shards) == 2
        assert all(s.size == 1 for s in shards)

    def test_split_single_shard_is_identity(self):
        indices = np.arange(8)
        (shard,) = split_indices(indices, 1)
        np.testing.assert_array_equal(shard, indices)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_indices(np.arange(4), 0)

    def test_single_shard_weight_is_exactly_one(self):
        assert shard_weights([np.arange(7)]) == [1.0]

    def test_weights_are_row_fractions(self):
        weights = shard_weights(split_indices(np.arange(10), 3))
        assert weights == [0.4, 0.3, 0.3]


class TestReduction:
    def test_loss_terms_weighted_in_order(self):
        terms = reduce_loss_terms([(2.0, 1.0, 1.0), (4.0, 3.0, 1.0)],
                                  [0.5, 0.5])
        assert terms.total == 3.0
        assert terms.reconstruction == 2.0
        assert terms.kl == 1.0

    def test_gradients_weighted_sum_in_shard_order(self):
        module = FakeModule(["w"])
        g0, g1 = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        reduce_gradients(
            module,
            [(("w",), {"w": g0}), (("w",), {"w": g1})],
            [0.25, 0.75],
        )
        (_, param), = module._params
        np.testing.assert_array_equal(param.grad, 0.25 * g0 + 0.75 * g1)

    def test_absent_everywhere_stays_none(self):
        module = FakeModule(["w", "frozen"])
        reduce_gradients(
            module,
            [(("w",), {"w": np.ones(2)})],
            [1.0],
        )
        params = dict(module._params)
        assert params["frozen"].grad is None
        np.testing.assert_array_equal(params["w"].grad, np.ones(2))

    def test_partial_presence_uses_contributing_shards_only(self):
        module = FakeModule(["w"])
        reduce_gradients(
            module,
            [((), {}), (("w",), {"w": np.full(2, 8.0)})],
            [0.5, 0.5],
        )
        (_, param), = module._params
        np.testing.assert_array_equal(param.grad, np.full(2, 4.0))


class TestDescriptors:
    def test_precision_descriptor_round_trip(self):
        for name in ("float64", "float32", "mixed32"):
            policy = resolve_precision(name)
            assert policy.descriptor() == name
            assert precision_from_descriptor(policy.descriptor()) is policy

    def test_numpy_backend_descriptor_round_trip(self):
        rebuilt = backend_from_descriptor(NumpyBackend().descriptor())
        assert isinstance(rebuilt, NumpyBackend)

    def test_threaded_backend_descriptor_keeps_options(self):
        backend = ThreadedBackend(max_workers=3, min_shard_elements=7)
        rebuilt = backend_from_descriptor(backend.descriptor())
        assert isinstance(rebuilt, ThreadedBackend)
        assert rebuilt.max_workers == 3
        assert rebuilt.min_shard_elements == 7

    def test_bad_descriptor_raises(self):
        with pytest.raises(ValueError):
            backend_from_descriptor({"nope": 1})
        with pytest.raises(ValueError):
            backend_from_descriptor({"name": "no-such-backend"})


class TestValidation:
    def test_nonpositive_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelTrainStep(0)

    def test_custom_architecture_rejected_before_spawn(self):
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(5,),
                            rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8,
                                             workers=1))
        with pytest.raises(ValueError, match="cannot data-parallel train"):
            trainer.fit(toy_data(n=16))

    def test_non_factory_model_rejected(self):
        class Custom(ClassicalAE):
            pass

        model = Custom(input_dim=16, latent_dim=4,
                       rng=np.random.default_rng(0))
        with pytest.raises(TypeError, match="factory"):
            model_metadata(model)

    def test_metadata_round_trips_factory_models(self):
        model = make_model()
        metadata = model_metadata(model, seed=9)
        assert metadata["model"] == "ae"
        assert metadata["seed"] == 9
        from repro.models import build_from_metadata
        from repro.nn.flat import parameter_layout

        rebuilt = build_from_metadata(metadata)
        assert parameter_layout(rebuilt).specs() == \
            parameter_layout(model).specs()


def _fit(workers=None, strategy=None, seed=3):
    train, test = toy_data(n=24, seed=1), toy_data(n=8, seed=2)
    model = make_model(seed=seed)
    config = TrainConfig(epochs=2, batch_size=8, seed=5, workers=workers,
                         max_grad_norm=1.0)
    trainer = Trainer(model, config, strategy=strategy)
    history = trainer.fit(train, test_data=test)
    return history, model


class TestWorkerEquality:
    def test_single_worker_matches_sequential_bit_for_bit(self):
        h_seq, m_seq = _fit()
        h_par, m_par = _fit(workers=1)
        assert h_seq.train_losses == h_par.train_losses
        assert h_seq.test_losses == h_par.test_losses
        assert h_seq.batch_losses == h_par.batch_losses
        for (_, a), (_, b) in zip(m_seq.named_parameters(),
                                  m_par.named_parameters()):
            assert (a.data == b.data).all()

    def test_two_workers_match_same_order_reference(self):
        h_ref, m_ref = _fit(strategy=ShardedTrainStep(2))
        h_par, m_par = _fit(workers=2)
        assert h_ref.train_losses == h_par.train_losses
        assert h_ref.batch_losses == h_par.batch_losses
        for (_, a), (_, b) in zip(m_ref.named_parameters(),
                                  m_par.named_parameters()):
            assert (a.data == b.data).all()


class TestFailureHandling:
    def _setup_strategy(self):
        train = toy_data(n=16, seed=1)
        model = make_model()
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8,
                                             workers=1))
        strategy = trainer.strategy
        strategy.setup(trainer, train.features)
        return strategy

    def test_dead_worker_raises_instead_of_hanging(self):
        strategy = self._setup_strategy()
        try:
            strategy._procs[0].terminate()
            strategy._procs[0].join()
            with pytest.raises(RuntimeError, match="worker 0"):
                strategy.step(np.arange(8))
        finally:
            strategy.close()

    def test_worker_exception_propagates_with_traceback(self):
        strategy = self._setup_strategy()
        try:
            with pytest.raises(RuntimeError, match="IndexError"):
                strategy.step(np.array([10_000_000]))
        finally:
            strategy.close()

    def test_close_is_idempotent(self):
        strategy = ParallelTrainStep(1)
        strategy.close()  # never set up: must be a no-op
        strategy.close()

    def test_shared_memory_released_when_fit_raises_mid_epoch(self):
        shm_names = []

        class Exploding(ParallelTrainStep):
            def __init__(self):
                super().__init__(1)
                self.calls = 0

            def setup(self, trainer, features):
                super().setup(trainer, features)
                shm_names.extend(shm.name for shm in self._shms)

            def step(self, indices):
                self.calls += 1
                if self.calls == 2:
                    raise RuntimeError("mid-epoch failure")
                return super().step(indices)

        trainer = Trainer(make_model(),
                          TrainConfig(epochs=1, batch_size=8, workers=1),
                          strategy=Exploding())
        with pytest.raises(RuntimeError, match="mid-epoch failure"):
            trainer.fit(toy_data(n=16))
        assert len(shm_names) == 2
        for name in shm_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestCliWorkers:
    def test_train_with_workers_prints_epoch_seconds(self, capsys):
        from repro.cli import main

        code = main([
            "train", "--model", "ae", "--dataset", "qm9", "--samples", "24",
            "--epochs", "1", "--batch-size", "8", "--workers", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "epoch 1" in output
        assert "s)" in output  # per-epoch wall clock
