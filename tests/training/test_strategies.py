"""Tests for the TrainStep strategy seam and the shared update tail."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.models import ClassicalAE, build_model
from repro.nn import Parameter
from repro.nn.schedulers import StepLR
from repro.training import (
    SequentialTrainStep,
    ShardedTrainStep,
    TrainConfig,
    Trainer,
    TrainStep,
    clip_grad_norm,
    evaluate_reconstruction,
)


def toy_data(n=24, dim=16, seed=0):
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(4, dim))
    return ArrayDataset(gen.normal(size=(n, 4)) @ base)


def make_model(seed=3, dim=16, dtype=None):
    return build_model("ae", dim, 4, 2, 4, seed=seed) if dtype is None else \
        build_model("ae", dim, 4, 2, 4, seed=seed, dtype=dtype)


class TestStrategySeam:
    def test_default_strategy_is_sequential(self):
        trainer = Trainer(make_model(), TrainConfig(epochs=1))
        assert isinstance(trainer.strategy, SequentialTrainStep)

    def test_workers_config_selects_parallel_strategy(self):
        from repro.training import ParallelTrainStep

        trainer = Trainer(make_model(), TrainConfig(epochs=1, workers=2))
        assert isinstance(trainer.strategy, ParallelTrainStep)
        assert trainer.strategy.n_workers == 2

    def test_lifecycle_setup_steps_close(self):
        calls = []

        class Spy(SequentialTrainStep):
            def setup(self, trainer, features):
                calls.append("setup")
                super().setup(trainer, features)

            def step(self, indices):
                calls.append("step")
                return super().step(indices)

            def close(self):
                calls.append("close")

        data = toy_data(n=16)
        config = TrainConfig(epochs=2, batch_size=8)
        Trainer(make_model(), config, strategy=Spy()).fit(data)
        assert calls == ["setup"] + ["step"] * 4 + ["close"]

    def test_close_runs_when_step_raises_mid_epoch(self):
        closed = []

        class Exploding(SequentialTrainStep):
            def step(self, indices):
                raise RuntimeError("boom")

            def close(self):
                closed.append(True)

        trainer = Trainer(make_model(), TrainConfig(epochs=1, batch_size=8),
                          strategy=Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            trainer.fit(toy_data(n=16))
        assert closed == [True]

    def test_step_receives_loader_index_batches(self):
        seen = []

        class Recorder(SequentialTrainStep):
            def step(self, indices):
                seen.append(np.asarray(indices).copy())
                return super().step(indices)

        data = toy_data(n=16)
        config = TrainConfig(epochs=1, batch_size=8, seed=11)
        Trainer(make_model(), config, strategy=Recorder()).fit(data)
        flat = np.concatenate(seen)
        assert sorted(flat.tolist()) == list(range(16))

    def test_abstract_step_raises(self):
        with pytest.raises(NotImplementedError):
            TrainStep().step(np.arange(4))


class TestStrategyParity:
    """Scheduler stepping and early stopping are trainer-side concerns —
    identical whichever strategy executes the updates."""

    def _run(self, strategy):
        train, test = toy_data(n=24, seed=1), toy_data(n=8, seed=2)
        config = TrainConfig(
            epochs=6, batch_size=8, seed=5, max_grad_norm=1.0,
            early_stop_patience=2,
            scheduler=lambda opt: StepLR(opt, step_size=2, gamma=0.5),
        )
        model = make_model()
        trainer = Trainer(model, config, strategy=strategy)
        history = trainer.fit(train, test_data=test)
        lrs = [group["lr"] for group in trainer.optimizer.param_groups]
        return history, lrs, model

    def test_scheduler_and_early_stop_identical_across_strategies(self):
        h_seq, lr_seq, m_seq = self._run(SequentialTrainStep())
        h_shard, lr_shard, m_shard = self._run(ShardedTrainStep(1))
        assert len(h_seq.epochs) == len(h_shard.epochs)
        assert lr_seq == lr_shard
        assert h_seq.train_losses == h_shard.train_losses
        assert h_seq.test_losses == h_shard.test_losses
        assert h_seq.batch_losses == h_shard.batch_losses
        for (_, a), (_, b) in zip(m_seq.named_parameters(),
                                  m_shard.named_parameters()):
            assert (a.data == b.data).all()

    def test_epoch_records_carry_wall_clock_seconds(self):
        history, _, _ = self._run(SequentialTrainStep())
        assert all(r.seconds is not None and r.seconds > 0
                   for r in history.epochs)


class TestClipGradNormEdgeCases:
    def test_all_grads_none_returns_zero(self):
        params = [Parameter(np.zeros(3)), Parameter(np.zeros(2))]
        assert clip_grad_norm(params, max_norm=1.0) == 0.0
        assert all(p.grad is None for p in params)

    def test_norm_exactly_at_max_is_untouched(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm exactly 5.0
        before = p.grad
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == 5.0
        assert p.grad is before
        np.testing.assert_array_equal(p.grad, [3.0, 4.0])

    def test_scales_in_place(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        buffer = p.grad
        clip_grad_norm([p], max_norm=1.0)
        assert p.grad is buffer  # no rebinding, no fresh allocation
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-6)

    def test_norm_is_independent_of_gradient_memory_layout(self):
        gen = np.random.default_rng(0)
        values = gen.normal(size=(64, 48))
        c_param = Parameter(np.zeros_like(values))
        f_param = Parameter(np.zeros_like(values))
        c_param.grad = np.ascontiguousarray(values)
        f_param.grad = np.asfortranarray(values)
        norm_c = clip_grad_norm([c_param], max_norm=1e9)
        norm_f = clip_grad_norm([f_param], max_norm=1e9)
        assert norm_c == norm_f  # bitwise: sum order must not follow layout

    def test_reexported_from_trainer_module(self):
        from repro.training.strategies import clip_grad_norm as canonical
        from repro.training.trainer import clip_grad_norm as reexport

        assert reexport is canonical


class TestEvaluatePrecisionScope:
    def test_evaluate_runs_under_config_precision(self):
        """Regression: evaluate() outside fit() used to pick up the ambient
        precision policy instead of the trainer's configured one."""
        data = toy_data(n=16)
        model = make_model(dtype="float32")
        trainer = Trainer(model, TrainConfig(epochs=1, precision="float32"))
        got = trainer.evaluate(data)  # ambient policy here is float64
        expected = evaluate_reconstruction(model, data, batch_size=32,
                                           dtype="float32")
        drifted = evaluate_reconstruction(model, data, batch_size=32,
                                          dtype="float64")
        assert got == expected
        assert got != drifted  # float32 batches round differently
