"""Tests for losses, trainer, and history bookkeeping."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.models import ClassicalAE, ClassicalVAE
from repro.models.base import AutoencoderOutput
from repro.nn import Tensor
from repro.training import (
    EpochRecord,
    History,
    TrainConfig,
    Trainer,
    autoencoder_loss,
    evaluate_reconstruction,
)


def toy_data(n=40, dim=16, seed=0):
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(4, dim))
    coeff = gen.normal(size=(n, 4))
    return ArrayDataset(coeff @ base)  # low-rank, easy to autoencode


class TestLoss:
    def test_ae_loss_is_mse(self):
        recon = Tensor(np.ones((2, 4)))
        target = Tensor(np.zeros((2, 4)))
        out = AutoencoderOutput(reconstruction=recon, latent=Tensor(np.zeros((2, 2))))
        loss, terms = autoencoder_loss(out, target)
        assert loss.item() == pytest.approx(1.0)
        assert terms.kl == 0.0

    def test_vae_loss_adds_kl(self):
        recon = Tensor(np.zeros((2, 4)))
        target = Tensor(np.zeros((2, 4)))
        mu = Tensor(np.ones((2, 3)))
        logvar = Tensor(np.zeros((2, 3)))
        out = AutoencoderOutput(recon, Tensor(np.zeros((2, 3))), mu, logvar)
        loss, terms = autoencoder_loss(out, target, beta=1.0)
        # KL = 0.5 * sum(mu^2) = 1.5 per sample, normalized by 4 features.
        assert terms.kl == pytest.approx(1.5 / 4)
        assert loss.item() == pytest.approx(terms.kl)

    def test_beta_scales_kl(self):
        recon = Tensor(np.zeros((1, 4)))
        mu = Tensor(np.ones((1, 2)))
        logvar = Tensor(np.zeros((1, 2)))
        out = AutoencoderOutput(recon, Tensor(np.zeros((1, 2))), mu, logvar)
        loss1, __ = autoencoder_loss(out, Tensor(np.zeros((1, 4))), beta=1.0)
        out2 = AutoencoderOutput(recon, Tensor(np.zeros((1, 2))), mu, logvar)
        loss2, __ = autoencoder_loss(out2, Tensor(np.zeros((1, 4))), beta=2.0)
        assert loss2.item() == pytest.approx(2 * loss1.item())


class TestTrainer:
    def test_ae_loss_decreases(self):
        data = toy_data()
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(12, 8),
                            rng=np.random.default_rng(1))
        history = Trainer(model, TrainConfig(epochs=15, batch_size=8,
                                             classical_lr=0.01)).fit(data)
        assert history.final_train_loss < history.train_losses[0] * 0.5

    def test_vae_trains(self):
        data = toy_data(seed=2)
        model = ClassicalVAE(input_dim=16, latent_dim=4, hidden_dims=(12, 8),
                             rng=np.random.default_rng(2))
        history = Trainer(model, TrainConfig(epochs=10, batch_size=8,
                                             classical_lr=0.01)).fit(data)
        assert history.train_losses[-1] < history.train_losses[0]
        assert history.epochs[-1].train_kl >= 0.0

    def test_test_loss_recorded(self):
        train, test = toy_data(seed=3), toy_data(seed=4)
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(12, 8),
                            rng=np.random.default_rng(3))
        history = Trainer(model, TrainConfig(epochs=3, batch_size=8)).fit(
            train, test_data=test
        )
        assert all(r.test_loss is not None for r in history.epochs)

    def test_training_is_deterministic(self):
        def run():
            data = toy_data(seed=5)
            model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(12, 8),
                                rng=np.random.default_rng(7))
            cfg = TrainConfig(epochs=3, batch_size=8, seed=11)
            return Trainer(model, cfg).fit(data).train_losses

        np.testing.assert_allclose(run(), run())

    def test_paper_sq_config(self):
        cfg = TrainConfig.paper_sq(epochs=5)
        assert cfg.quantum_lr == 0.03
        assert cfg.classical_lr == 0.01
        assert cfg.batch_size == 32

    def test_heterogeneous_lrs_applied(self):
        from repro.models import ScalableQuantumAE

        model = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                  rng=np.random.default_rng(0))
        trainer = Trainer(model, TrainConfig(quantum_lr=0.5, classical_lr=0.25))
        lrs = sorted(g["lr"] for g in trainer.optimizer.param_groups)
        assert lrs == [0.25, 0.5]

    def test_evaluate_reconstruction_zero_for_identity(self):
        class IdentityModel(ClassicalAE):
            def encode(self, x):
                return x

            def decode(self, z):
                return z

        model = IdentityModel(input_dim=16, latent_dim=16, hidden_dims=(16,),
                              rng=np.random.default_rng(0))
        data = toy_data(seed=6)
        assert evaluate_reconstruction(model, data) == pytest.approx(0.0)


class TestHistory:
    def _history(self):
        h = History()
        for epoch in range(1, 4):
            h.append(EpochRecord(epoch, 1.0 / epoch, 1.0 / epoch, 0.0,
                                 test_loss=2.0 / epoch))
        return h

    def test_properties(self):
        h = self._history()
        assert h.train_losses == [1.0, 0.5, 1.0 / 3.0]
        assert h.final_train_loss == pytest.approx(1.0 / 3.0)
        assert h.final_test_loss == pytest.approx(2.0 / 3.0)

    def test_loss_at_epoch(self):
        h = self._history()
        assert h.loss_at_epoch(2) == pytest.approx(0.5)
        assert h.loss_at_epoch(2, split="test") == pytest.approx(1.0)

    def test_loss_at_epoch_missing(self):
        with pytest.raises(KeyError):
            self._history().loss_at_epoch(99)

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            History().final_train_loss
