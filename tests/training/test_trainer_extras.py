"""Tests for gradient clipping, early stopping, and dataset statistics."""

import numpy as np
import pytest

from repro.data import ArrayDataset, dataset_statistics, load_pdbbind_ligands, load_qm9
from repro.models import ClassicalAE
from repro.nn import Parameter
from repro.training import TrainConfig, Trainer
from repro.training.trainer import clip_grad_norm


def toy_data(n=40, dim=16, seed=0):
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(4, dim))
    return ArrayDataset(gen.normal(size=(n, 4)) @ base)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.2, 0.2])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.3)
        np.testing.assert_allclose(p.grad, [0.1, 0.2, 0.2])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-6)

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_skips_gradless_params(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestTrainerExtras:
    def test_clipping_config_trains(self):
        data = toy_data()
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                            rng=np.random.default_rng(0))
        config = TrainConfig(epochs=5, batch_size=8, classical_lr=0.01,
                             max_grad_norm=0.5)
        history = Trainer(model, config).fit(data)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_early_stopping_halts(self):
        train = toy_data(seed=1)
        test = toy_data(seed=2)

        class Frozen(ClassicalAE):
            """Test-loss plateau by construction: encode/decode constants."""

            def decode(self, z):
                return super().decode(z) * 0.0

        model = Frozen(input_dim=16, latent_dim=4, hidden_dims=(8,),
                       rng=np.random.default_rng(3))
        config = TrainConfig(epochs=50, batch_size=8,
                             early_stop_patience=3)
        history = Trainer(model, config).fit(train, test_data=test)
        assert len(history.epochs) < 50

    def test_early_stopping_needs_test_data(self):
        # Patience without test data used to be silently inert (the run
        # trained every epoch); now it is a clear configuration error.
        data = toy_data(seed=3)
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                            rng=np.random.default_rng(4))
        config = TrainConfig(epochs=3, batch_size=8, early_stop_patience=1)
        with pytest.raises(ValueError, match="early_stop_patience=1 requires"):
            Trainer(model, config).fit(data)

    def test_early_stopping_with_test_data_still_runs(self):
        data = toy_data(seed=3)
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                            rng=np.random.default_rng(4))
        config = TrainConfig(epochs=3, batch_size=8, early_stop_patience=5)
        history = Trainer(model, config).fit(data, test_data=toy_data(seed=9))
        assert len(history.epochs) == 3


class TestDatasetStatistics:
    def test_qm9_statistics(self):
        stats = dataset_statistics(load_qm9(n_samples=64, seed=0))
        assert stats.n_samples == 64
        assert stats.matrix_size == 8
        assert stats.heavy_atoms_max <= 8
        fractions = stats.atom_fractions()
        assert fractions["C"] > 0.5  # carbon-dominated, like QM9
        assert "S" not in fractions

    def test_pdbbind_statistics(self):
        stats = dataset_statistics(load_pdbbind_ligands(n_samples=24, seed=0))
        assert stats.matrix_size == 32
        assert stats.heavy_atoms_max <= 32
        assert stats.sparsity > 0.8  # 32x32 ligand matrices are sparse
        assert "single" in stats.bond_fractions()

    def test_fractions_sum_to_one(self):
        stats = dataset_statistics(load_qm9(n_samples=16, seed=1))
        assert sum(stats.atom_fractions().values()) == pytest.approx(1.0)
        assert sum(stats.bond_fractions().values()) == pytest.approx(1.0)

    def test_requires_raw(self):
        with pytest.raises(ValueError):
            dataset_statistics(ArrayDataset(np.zeros((4, 16))))

    def test_format_table(self):
        stats = dataset_statistics(load_qm9(n_samples=8, seed=2))
        text = stats.format_table()
        assert "sparsity" in text and "atom C" in text


class TestEvaluateModeRestore:
    """evaluate_reconstruction must restore the caller's train/eval mode."""

    def _model(self):
        return ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                           rng=np.random.default_rng(0))

    def test_restores_training_mode(self):
        from repro.training.trainer import evaluate_reconstruction

        model = self._model()
        model.train()
        evaluate_reconstruction(model, toy_data(n=8), batch_size=4)
        assert all(m.training for m in model.modules())

    def test_restores_eval_mode(self):
        # The old behavior unconditionally called model.train() on exit,
        # clobbering a caller that had put the model in eval mode.
        from repro.training.trainer import evaluate_reconstruction

        model = self._model()
        model.eval()
        evaluate_reconstruction(model, toy_data(n=8), batch_size=4)
        assert not any(m.training for m in model.modules())

    def test_restores_mixed_modes(self):
        from repro.training.trainer import evaluate_reconstruction

        model = self._model()
        model.train()
        model.encoder.eval()
        before = [(m, m.training) for m in model.modules()]
        evaluate_reconstruction(model, toy_data(n=8), batch_size=4)
        assert all(m.training == flag for m, flag in before)

    def test_restores_mode_when_forward_raises(self):
        from repro.training.trainer import evaluate_reconstruction

        model = self._model()
        model.train()
        bad = ArrayDataset(np.zeros((4, 7)))  # wrong feature width
        with pytest.raises(Exception):
            evaluate_reconstruction(model, bad, batch_size=4)
        assert all(m.training for m in model.modules())

    def test_empty_dataset_rejected(self):
        from repro.training.trainer import evaluate_reconstruction

        with pytest.raises(ValueError, match="empty dataset"):
            evaluate_reconstruction(self._model(),
                                    ArrayDataset(np.zeros((0, 16))))


class TestEmptyLoaderValidation:
    def test_empty_dataset_raises_clear_error(self):
        # Used to surface as a bare ZeroDivisionError from the epoch-mean
        # division at the end of the first epoch.
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                            rng=np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=8)
        trainer = Trainer(model, config)
        with pytest.raises(ValueError, match="no batches"):
            trainer.fit(ArrayDataset(np.zeros((0, 16))))


class TestSchedulerWiring:
    def _fit(self, scheduler_factory, epochs=4):
        data = toy_data(n=24)
        model = ClassicalAE(input_dim=16, latent_dim=4, hidden_dims=(8,),
                            rng=np.random.default_rng(0))
        config = TrainConfig(
            epochs=epochs, batch_size=8, quantum_lr=0.03, classical_lr=0.01,
            scheduler=scheduler_factory,
        )
        trainer = Trainer(model, config)
        trainer.fit(data)
        return trainer

    def test_scheduler_steps_once_per_epoch(self):
        from repro.nn.schedulers import ExponentialLR

        trainer = self._fit(lambda opt: ExponentialLR(opt, gamma=0.5),
                            epochs=3)
        assert trainer.scheduler.last_epoch == 3
        for group, base in zip(trainer.optimizer.param_groups,
                               trainer.scheduler.base_lrs):
            assert group["lr"] == pytest.approx(base * 0.5**3)

    def test_heterogeneous_ratio_preserved_across_decay(self):
        # The paper's 0.03 / 0.01 quantum-vs-classical split must survive
        # the schedule: both groups decay by the same factor each epoch.
        from repro.models import ScalableQuantumAE
        from repro.nn.schedulers import StepLR

        rng = np.random.default_rng(0)
        model = ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                                  rng=rng)
        config = TrainConfig(
            epochs=2, batch_size=4, quantum_lr=0.03, classical_lr=0.01,
            scheduler=lambda opt: StepLR(opt, step_size=1, gamma=0.1),
        )
        trainer = Trainer(model, config)
        groups = trainer.optimizer.param_groups
        assert groups[0]["lr"] / groups[1]["lr"] == pytest.approx(3.0)
        data = ArrayDataset(np.abs(rng.normal(size=(8, 16))) + 0.01)
        trainer.fit(data)
        lrs = trainer.scheduler.current_lrs()
        assert lrs[0] == pytest.approx(0.03 * 0.01)  # two decade steps
        assert lrs[1] == pytest.approx(0.01 * 0.01)
        assert lrs[0] / lrs[1] == pytest.approx(3.0)

    def test_no_scheduler_keeps_constant_lrs(self):
        trainer = self._fit(None, epochs=2)
        assert trainer.scheduler is None
        lrs = [g["lr"] for g in trainer.optimizer.param_groups]
        assert lrs == [0.01]  # classical-only model, untouched lr
