"""Streaming shard loaders: shard boundaries must never change the data."""

import numpy as np
import pytest

from repro.chem.metrics import score_matrices
from repro.data import (
    iter_shards,
    load_pdbbind_ligands,
    load_qm9,
    score_matrix_stream,
    stream_pdbbind_ligands,
    stream_qm9,
)


class TestIterShards:
    def test_shard_shapes_and_concatenation(self):
        matrices = [np.full((4, 4), i, dtype=np.float64) for i in range(10)]
        shards = list(iter_shards(iter(matrices), shard_size=4))
        assert [s.shape[0] for s in shards] == [4, 4, 2]
        assert np.array_equal(np.concatenate(shards), np.stack(matrices))

    def test_exact_multiple_has_no_short_shard(self):
        matrices = [np.zeros((2, 2)) for _ in range(6)]
        assert [s.shape[0] for s in iter_shards(iter(matrices), 3)] == [3, 3]

    def test_rejects_nonpositive_shard_size(self):
        with pytest.raises(ValueError):
            list(iter_shards(iter([]), shard_size=0))

    def test_empty_source_yields_nothing(self):
        assert list(iter_shards(iter([]), shard_size=8)) == []


class TestStreamLoaders:
    def test_qm9_stream_equals_full_load(self):
        full = load_qm9(96, seed=2022).raw
        shards = list(stream_qm9(96, seed=2022, shard_size=40))
        assert [s.shape[0] for s in shards] == [40, 40, 16]
        assert np.array_equal(np.concatenate(shards), full)

    def test_pdbbind_stream_equals_full_load(self):
        full = load_pdbbind_ligands(48, seed=2019).raw
        shards = list(stream_pdbbind_ligands(48, seed=2019, shard_size=13))
        assert np.array_equal(np.concatenate(shards), full)

    def test_rejects_nonpositive_n_samples(self):
        with pytest.raises(ValueError):
            stream_qm9(0)
        with pytest.raises(ValueError):
            stream_pdbbind_ligands(0)


class TestScoreMatrixStream:
    def test_equals_in_memory_scoring(self):
        raw = load_pdbbind_ligands(40, seed=2019).raw.astype(np.float64)
        rng = np.random.default_rng(7)
        stack = raw + rng.normal(0.0, 0.4, size=raw.shape)
        for correct in (True, False):
            expected = score_matrices(stack, correct=correct)
            for shard_size in (7, 16, 64):
                got = score_matrix_stream(
                    iter_shards(iter(stack), shard_size), correct=correct
                )
                assert got == expected

    def test_empty_stream(self):
        scores = score_matrix_stream(iter([]))
        assert scores.n_total == 0
        assert scores.n_scored == 0
        assert scores.qed == 0.0
