"""Tests for dataset generators and loading utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import decode_molecule, is_valid, is_well_formed
from repro.data import (
    ArrayDataset,
    DataLoader,
    DIGIT_SIZE,
    PDBBIND_MATRIX_SIZE,
    digit_template,
    l1_normalize,
    ligand_passes_filter,
    load_cifar_gray,
    load_digits,
    load_pdbbind_ligands,
    load_qm9,
    synth_image,
    train_test_split,
)
from repro.chem.generation import MoleculeSpec, random_molecule


class TestArrayDataset:
    def test_basic(self):
        data = ArrayDataset(np.zeros((10, 4)))
        assert len(data) == 10
        assert data.n_features == 4

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((10, 4, 4)))

    def test_raw_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((10, 4)), raw=np.zeros((9, 2, 2)))

    def test_subset_keeps_raw(self):
        data = ArrayDataset(np.arange(20.0).reshape(10, 2), raw=np.arange(10))
        sub = data.subset(np.array([1, 3]))
        np.testing.assert_allclose(sub.raw, [1, 3])

    def test_normalized(self):
        data = ArrayDataset(np.array([[1.0, 3.0], [2.0, 2.0]]))
        norm = data.normalized()
        np.testing.assert_allclose(norm.features.sum(axis=1), [1.0, 1.0])

    def test_l1_normalize_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            l1_normalize(np.zeros((2, 3)))


class TestSplitAndLoader:
    def test_split_fractions(self):
        data = ArrayDataset(np.zeros((100, 2)))
        train, test = train_test_split(data, test_fraction=0.15, seed=1)
        assert len(test) == 15
        assert len(train) == 85

    def test_split_is_partition(self):
        data = ArrayDataset(np.arange(50.0).reshape(50, 1))
        train, test = train_test_split(data, seed=2)
        merged = np.sort(
            np.concatenate([train.features.ravel(), test.features.ravel()])
        )
        np.testing.assert_allclose(merged, np.arange(50.0))

    def test_split_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(ArrayDataset(np.zeros((10, 1))), test_fraction=1.5)

    def test_loader_covers_all_samples(self):
        data = ArrayDataset(np.arange(10.0).reshape(10, 1))
        loader = DataLoader(data, batch_size=3, shuffle=False)
        batches = list(loader)
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        np.testing.assert_allclose(
            np.concatenate(batches).ravel(), np.arange(10.0)
        )

    def test_loader_drop_last(self):
        data = ArrayDataset(np.zeros((10, 1)))
        loader = DataLoader(data, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(len(b) for b in loader) == 9

    def test_loader_shuffles_deterministically(self):
        data = ArrayDataset(np.arange(10.0).reshape(10, 1))
        a = np.concatenate(list(DataLoader(data, batch_size=10, seed=5))).ravel()
        b = np.concatenate(list(DataLoader(data, batch_size=10, seed=5))).ravel()
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, np.arange(10.0))

    def test_loader_len_matches_iteration(self):
        data = ArrayDataset(np.zeros((7, 1)))
        loader = DataLoader(data, batch_size=2)
        assert len(loader) == len(list(loader))


class TestQM9:
    def test_shapes(self):
        data = load_qm9(n_samples=32, seed=0)
        assert data.features.shape == (32, 64)
        assert data.raw.shape == (32, 8, 8)

    def test_matrices_well_formed_and_valid(self):
        data = load_qm9(n_samples=16, seed=1)
        for matrix in data.raw:
            assert is_well_formed(matrix)
            assert is_valid(decode_molecule(matrix))

    def test_deterministic(self):
        a = load_qm9(n_samples=8, seed=3)
        b = load_qm9(n_samples=8, seed=3)
        np.testing.assert_array_equal(a.raw, b.raw)

    def test_different_seeds_differ(self):
        a = load_qm9(n_samples=8, seed=3)
        b = load_qm9(n_samples=8, seed=4)
        assert not np.array_equal(a.raw, b.raw)

    def test_element_palette(self):
        data = load_qm9(n_samples=64, seed=5)
        codes = {int(c) for matrix in data.raw for c in np.diag(matrix) if c}
        assert codes <= {1, 2, 3, 4}  # C/N/O/F only, never S


class TestPDBbind:
    def test_shapes(self):
        data = load_pdbbind_ligands(n_samples=24, seed=0)
        assert data.features.shape == (24, 1024)
        assert data.raw.shape == (24, 32, 32)

    def test_all_ligands_valid(self):
        data = load_pdbbind_ligands(n_samples=16, seed=1)
        for matrix in data.raw:
            mol = decode_molecule(matrix)
            assert is_valid(mol)
            assert mol.num_atoms <= PDBBIND_MATRIX_SIZE

    def test_filter_rejects_oversize(self):
        rng = np.random.default_rng(0)
        spec = MoleculeSpec(min_atoms=40, max_atoms=45)
        big = random_molecule(rng, spec)
        assert not ligand_passes_filter(big)

    def test_filter_rejects_foreign_elements(self):
        from repro.chem import Molecule

        mol = Molecule.from_atoms_and_bonds(["C", "Cl"], [(0, 1, 1.0)])
        assert not ligand_passes_filter(mol)

    def test_deterministic(self):
        a = load_pdbbind_ligands(n_samples=8, seed=7)
        b = load_pdbbind_ligands(n_samples=8, seed=7)
        np.testing.assert_array_equal(a.raw, b.raw)


class TestDigits:
    def test_shapes_and_range(self):
        data = load_digits(n_samples=50, seed=0)
        assert data.features.shape == (50, 64)
        assert data.features.min() >= 0.0
        assert data.features.max() <= 16.0

    def test_templates_distinct(self):
        flat = [digit_template(d).ravel() for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.allclose(flat[i], flat[j])

    def test_positive_l1_norm(self):
        data = load_digits(n_samples=100, seed=1)
        assert (data.features.sum(axis=1) > 0).all()

    def test_labels_cycle(self):
        # Sample i is a shifted/noised copy of template (i % 10): matching
        # against all +-1 shifts of every template should recover the class.
        data = load_digits(n_samples=20, seed=2)
        shifted_templates = []  # (digit, normalized shifted template)
        for digit in range(10):
            glyph = digit_template(digit)
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    t = np.roll(np.roll(glyph, dy, axis=0), dx, axis=1).ravel()
                    t = t - t.mean()
                    shifted_templates.append((digit, t / np.linalg.norm(t)))
        hits = 0
        for index in range(20):
            img = data.features[index] - data.features[index].mean()
            img /= np.linalg.norm(img)
            best = max(shifted_templates, key=lambda dt: dt[1] @ img)
            hits += int(best[0] == index % 10)
        assert hits >= 16

    def test_deterministic(self):
        np.testing.assert_array_equal(
            load_digits(12, seed=9).features, load_digits(12, seed=9).features
        )


class TestCifar:
    def test_shapes_and_range(self):
        data = load_cifar_gray(n_samples=10, seed=0)
        assert data.features.shape == (10, 1024)
        assert data.features.min() >= 0.0
        assert data.features.max() <= 1.0

    def test_images_not_flat(self):
        data = load_cifar_gray(n_samples=10, seed=1)
        assert (data.features.std(axis=1) > 0.05).all()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_synth_image_normalized(self, seed):
        rng = np.random.default_rng(seed)
        image = synth_image(rng)
        assert image.shape == (32, 32)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_deterministic(self):
        np.testing.assert_allclose(
            load_cifar_gray(5, seed=3).features, load_cifar_gray(5, seed=3).features
        )
