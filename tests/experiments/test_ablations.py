"""Tests for the ablation experiment drivers (minimal workloads)."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_beta_ablation,
    run_cnot_range_ablation,
    run_noise_robustness,
    run_patched_vs_monolithic,
    run_shot_noise_ablation,
)


class TestPatchedVsMonolithic:
    @pytest.fixture(scope="class")
    def result(self):
        return run_patched_vs_monolithic(n_ligands=24, epochs=1,
                                         patch_counts=(4,), seed=0)

    def test_entries(self, result):
        assert "H-BQ-AE (monolithic)" in result.losses
        assert "SQ-AE (p=4)" in result.losses

    def test_latent_dims(self, result):
        assert result.latent_dims["H-BQ-AE (monolithic)"] == 10
        assert result.latent_dims["SQ-AE (p=4)"] == 32

    def test_format(self, result):
        assert "monolithic" in result.format_table()


class TestCnotRange:
    def test_both_layouts_train(self):
        result = run_cnot_range_ablation(n_ligands=24, epochs=1, seed=0)
        assert len(result.losses) == 2
        for curve in result.losses.values():
            assert len(curve) == 1
            assert np.isfinite(curve[0])


class TestShotNoise:
    @pytest.fixture(scope="class")
    def result(self):
        return run_shot_noise_ablation(shot_counts=(16, 1024), n_molecules=6,
                                       seed=0)

    def test_rmse_decreases_with_shots(self, result):
        assert result.rmse_by_shots[1024] < result.rmse_by_shots[16]

    def test_shots_for_tolerance(self, result):
        assert result.shots_for(10.0) == 16  # everything passes a huge tol
        assert result.shots_for(0.0) is None  # nothing is exact

    def test_format(self, result):
        assert "Shots" in result.format_table()


class TestNoiseRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_noise_robustness(rates=(0.0, 0.2), n_molecules=4,
                                    n_trajectories=30, seed=0)

    def test_noiseless_exact(self, result):
        assert result.rmse_by_rate[0.0] < 1e-9

    def test_noise_hurts(self, result):
        assert result.rmse_by_rate[0.2] > 0.01

    def test_monotone_check_runs(self, result):
        assert isinstance(result.degrades_monotonically(), bool)


class TestBetaAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_beta_ablation(betas=(0.1, 50.0), n_molecules=48, epochs=4,
                                 seed=0)

    def test_rows(self, result):
        assert set(result.rows) == {0.1, 50.0}

    def test_tradeoff_directions(self, result):
        assert result.reconstruction_degrades_with_beta()
        assert result.posterior_shrinks_with_beta()

    def test_format(self, result):
        assert "beta" in result.format_table()
