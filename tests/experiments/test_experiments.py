"""Integration tests for the experiment drivers (minimal workloads).

These exercise every driver end to end with tiny configurations so the
plain test suite validates the full reproduction pipeline quickly; the
benchmark suite runs the same drivers at meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import FAST, FULL, get_scale
from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.fig7 import Fig7Config, run_fig7
from repro.experiments.fig8 import Fig8Config, run_fig8
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.table2 import Table2Config, run_table2


class TestScale:
    def test_default_scale_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert get_scale().name == "fast"

    def test_env_switches_to_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert get_scale().name == "full"

    def test_env_false_values(self, monkeypatch):
        for value in ("0", "false", "no", ""):
            monkeypatch.setenv("REPRO_FULL", value)
            assert get_scale().name == "fast"

    def test_full_scale_matches_paper(self):
        assert FULL.pdbbind_samples == 2492
        assert FULL.epochs == 20
        assert FULL.table2_samples == 1000
        assert FULL.eval_epochs == (5, 10)

    def test_fast_scale_is_smaller(self):
        assert FAST.pdbbind_samples < FULL.pdbbind_samples
        assert FAST.epochs < FULL.epochs


class TestTable1:
    def test_quantum_rows_match_paper_exactly(self):
        result = run_table1()
        for row in result.rows:
            if row.model.startswith(("F-BQ", "H-BQ")):
                assert row.matches_paper, row.model

    def test_format_table_contains_all_models(self):
        text = run_table1().format_table()
        for model in PAPER_TABLE1:
            assert model in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        config = Table2Config(lsds=(18,), n_ligands=32, n_samples=12,
                              epochs=1, sq_layers=1, batch_size=16, seed=0)
        return run_table2(config)

    def test_has_both_models(self, result):
        models = {cell.model for cell in result.cells}
        assert models == {"VAE", "SQ-VAE"}

    def test_metrics_in_unit_interval(self, result):
        for cell in result.cells:
            for metric in (cell.qed, cell.logp, cell.sa):
                assert 0.0 <= metric <= 1.0

    def test_value_lookup(self, result):
        assert result.value("VAE", "qed", 18) == result.cells[0].qed

    def test_value_lookup_missing(self, result):
        with pytest.raises(KeyError):
            result.value("VAE", "qed", 96)

    def test_format_table(self, result):
        text = result.format_table()
        assert "SQ-VAE-QED" in text and "LSD-18" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(Fig4Config(n_samples=32, epochs=2, batch_size=16,
                                   bq_layers=1))

    def test_all_curves_present(self, result):
        expected = {f"{m}-{d}" for m in ("BQ-VAE", "CVAE")
                    for d in ("QM9", "Digits")}
        assert set(result.original_curves) == expected
        assert set(result.normalized_curves) == expected

    def test_curve_lengths(self, result):
        for curve in result.original_curves.values():
            assert len(curve) == 2

    def test_normalized_quantum_loss_small(self, result):
        assert result.normalized_curves["BQ-VAE-QM9"][-1] < 0.05

    def test_panels_rendered(self, result):
        assert "Input digits" in result.digit_panel
        assert "Input molecule" in result.molecule_panel


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(Fig5Config(n_ligands=32, epochs=2, classical_epochs=2,
                                   bq_layers=1, latent_sweep=(10, 32),
                                   batch_size=16))

    def test_curves(self, result):
        assert set(result.curves) == {"F-BQ-AE 10D", "H-BQ-AE 10D", "AE 10D"}

    def test_lsd_losses(self, result):
        assert set(result.lsd_losses) == {"AE", "VAE"}
        assert set(result.lsd_losses["AE"]) == {10, 32}

    def test_format(self, result):
        assert "LSD-32" in result.format_table()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(Fig6Config(depths=(1, 2), n_ligands=32, n_patches=2,
                                   epochs=2, eval_epochs=(1, 2),
                                   batch_size=16))

    def test_rows(self, result):
        assert set(result.losses) == {1, 2}
        assert set(result.losses[1]) == {"train@1", "test@1", "train@2",
                                         "test@2"}

    def test_best_depth(self, result):
        assert result.best_depth() in (1, 2)

    def test_format(self, result):
        assert "best depth" in result.format_table()

    def test_bad_eval_epochs_raise(self):
        with pytest.raises(ValueError):
            run_fig6(Fig6Config(depths=(1,), n_ligands=16, epochs=2,
                                eval_epochs=(1, 5)))


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(Fig7Config(quantum_lrs=(0.01, 0.1),
                                   classical_lrs=(0.001, 0.1),
                                   n_ligands=24, n_patches=2, n_layers=1,
                                   epochs=1, batch_size=16))

    def test_grid_complete(self, result):
        assert len(result.losses) == 4

    def test_grid_array(self, result):
        grid = result.loss_grid()
        assert grid.shape == (2, 2)
        assert np.isfinite(grid).all()

    def test_best_combination_is_member(self, result):
        assert result.best_combination() in result.losses

    def test_format(self, result):
        assert "best:" in result.format_table()


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(Fig8Config(n_ligands=32, n_images=16, epochs=2,
                                   sq_layers=1, batch_size=16,
                                   sq_lsds=(18,), vae_lsds=(16,),
                                   render_samples=2))

    def test_lsd_losses(self, result):
        assert set(result.lsd_losses) == {"VAE", "SQ-VAE", "SQ-AE"}
        assert 18 in result.lsd_losses["SQ-AE"]

    def test_cifar_curves(self, result):
        assert set(result.cifar_curves) == {"SQ-VAE", "CVAE", "SQ-AE", "CAE"}
        for curve in result.cifar_curves.values():
            assert len(curve) == 2

    def test_panel(self, result):
        assert "SQ-AE recon" in result.cifar_panel

    def test_format(self, result):
        text = result.format_table()
        assert "Fig. 8(a)" in text and "Fig. 8(b)" in text


class TestRunnerCli:
    def test_table1_via_cli(self, capsys):
        from repro.experiments.run import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.run import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
