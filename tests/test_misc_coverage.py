"""Coverage for smaller utilities: tables, functional extras, smiles edges."""

import numpy as np
import pytest

from repro.experiments.tables import format_series, format_table
from repro.nn import Tensor, functional as F


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bee"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "2.5000" in text
        assert "30" in text

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_format_table_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert "x" in text

    def test_format_series(self):
        text = format_series("curve", [1.0, 0.5])
        assert text == "curve: [1.0000, 0.5000]"


class TestFunctionalExtras:
    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_log_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = F.log_softmax(x).data
        assert np.isfinite(out).all()

    def test_bce_reduction_modes(self):
        pred = Tensor(np.full((2, 2), 0.5))
        target = Tensor(np.ones((2, 2)))
        total = F.bce_loss(pred, target, reduction="sum").item()
        mean = F.bce_loss(pred, target, reduction="mean").item()
        assert total == pytest.approx(mean * 4)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.mse_loss(Tensor([1.0]), Tensor([0.0]), reduction="bogus")

    def test_l1_none_reduction_shape(self):
        out = F.l1_loss(Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 3))),
                        reduction="none")
        assert out.shape == (2, 3)

    def test_gaussian_kl_sum_reduction(self):
        mu = Tensor(np.ones((4, 2)))
        logvar = Tensor(np.zeros((4, 2)))
        total = F.gaussian_kl(mu, logvar, reduction="sum").item()
        mean = F.gaussian_kl(mu, logvar, reduction="mean").item()
        assert total == pytest.approx(mean * 4)


class TestSmilesEdges:
    def test_two_digit_ring_closure_roundtrip(self):
        from repro.chem import Molecule, from_smiles, to_smiles

        # Build a molecule with >9 simultaneous ring closures is unwieldy;
        # instead check %nn parsing directly.
        mol = from_smiles("C%10CCCC%10")
        assert mol.num_atoms == 5
        assert len(mol.rings()) == 1

    def test_empty_smiles(self):
        from repro.chem import Molecule, to_smiles

        assert to_smiles(Molecule()) == ""

    def test_single_atom(self):
        from repro.chem import from_smiles, to_smiles

        assert to_smiles(from_smiles("S")) == "S"

    def test_nested_branches(self):
        from repro.chem import from_smiles

        mol = from_smiles("CC(C(C)(C)C)C")
        assert mol.num_atoms == 7
        assert mol.degree(2) == 4


class TestVisualizeEdges:
    def test_ascii_custom_ramp(self):
        from repro.evaluation import ascii_image

        art = ascii_image(np.array([[0.0, 1.0]]), ramp="ab")
        assert art == "aabb"

    def test_render_unknown_codes(self):
        from repro.evaluation import render_molecule_matrix

        matrix = np.zeros((2, 2), dtype=int)
        matrix[0, 0] = 7  # out-of-range atom code renders as '?'
        assert "?" in render_molecule_matrix(matrix)


class TestDrawerSwap:
    def test_swap_rendering(self):
        from repro.quantum import Circuit, draw
        from repro.quantum.circuit import Operation

        circuit = Circuit(2)
        circuit.ops.append(Operation("SWAP", (0, 1)))
        circuit.measure_expval()
        art = draw(circuit)
        assert art.count("x") >= 2


class TestMarginalOrdering:
    def test_wire_order_respected(self):
        from repro.quantum import (
            apply_gate,
            gates,
            marginal_probabilities,
            zero_state,
        )

        # |10>: wire 0 is |1>, wire 1 is |0>.
        state = apply_gate(zero_state(2), gates.PAULI_X, (0,))
        forward = marginal_probabilities(state, (0, 1))
        np.testing.assert_allclose(forward[0], [0, 0, 1, 0], atol=1e-12)
        flipped = marginal_probabilities(state, (1, 0))
        np.testing.assert_allclose(flipped[0], [0, 1, 0, 0], atol=1e-12)
