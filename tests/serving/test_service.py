"""Tests for the generation service, including the equivalence contract:

micro-batched execution must return results identical — plain ``==``,
not allclose — to sequential per-request execution.  This holds because
(a) each sample request's latents come from its own seeded stream exactly
as ``model.sample`` draws them, (b) stacked passes are row-independent
(``Tensor.transpose`` materializes contiguously so the GEMM kernel choice
cannot vary with row count), and (c) scoring is per-row math under the
padding-exactness contract of :mod:`repro.chem.batch`.
"""

import threading

import numpy as np
import pytest

from repro.evaluation.sampling import decode_latents, matrix_size, prior_latents
from repro.models import ClassicalAE, ClassicalVAE, ScalableQuantumVAE
from repro.nn import save_module
from repro.serving import (
    Client,
    GenerationService,
    ModelRegistry,
    ServingError,
    per_molecule_scores,
)


@pytest.fixture(scope="module")
def vae_checkpoint(tmp_path_factory):
    model = ClassicalVAE(input_dim=64, latent_dim=6,
                         rng=np.random.default_rng(0))
    return save_module(
        model, tmp_path_factory.mktemp("ckpt") / "vae",
        metadata={"model": "vae", "input_dim": 64, "n_patches": 4,
                  "n_layers": 3, "latent_dim": 6, "seed": 0},
    )


@pytest.fixture(scope="module")
def sq_vae_checkpoint(tmp_path_factory):
    model = ScalableQuantumVAE(input_dim=64, n_patches=4, n_layers=1,
                               rng=np.random.default_rng(7))
    return save_module(
        model, tmp_path_factory.mktemp("ckpt") / "sq",
        metadata={"model": "sq-vae", "input_dim": 64, "n_patches": 4,
                  "n_layers": 1, "latent_dim": None, "seed": 7},
    )


def run_concurrently(jobs):
    """Run one callable per thread; return results in job order."""
    results = [None] * len(jobs)
    errors = []

    def runner(index, job):
        try:
            results[index] = job()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i, job))
               for i, job in enumerate(jobs)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


def sequential_sample(model, count, seed):
    """Per-request execution: exactly what one lone request computes."""
    latents = prior_latents(model, count, np.random.default_rng(seed))
    size = matrix_size(model)
    return decode_latents(model, latents).reshape(count, size, size)


class TestBatchedEqualsSequential:
    """The acceptance contract: plain ``==``, no tolerance."""

    # A long flush window forces every concurrent request into ONE batch,
    # making this the strongest version of the claim.
    FLUSH = 0.25

    def test_sample_classical(self, vae_checkpoint):
        counts = [3, 8, 5, 7, 4, 6]
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=self.FLUSH) as service:
            model = service.registry.load(vae_checkpoint).model
            batched = run_concurrently([
                lambda c=c, s=100 + i: service.sample(c, seed=s)
                for i, c in enumerate(counts)
            ])
            stats = service.stats()["batcher"]
        assert stats["batch_size_max"] > 1  # genuinely micro-batched
        for i, c in enumerate(counts):
            expected = sequential_sample(model, c, 100 + i)
            assert batched[i].shape == (c, 8, 8)
            assert (batched[i] == expected).all()

    def test_sample_quantum(self, sq_vae_checkpoint):
        counts = [3, 5, 2, 6]
        with GenerationService(default_checkpoint=sq_vae_checkpoint,
                               flush_window=self.FLUSH) as service:
            model = service.registry.load(sq_vae_checkpoint).model
            batched = run_concurrently([
                lambda c=c, s=40 + i: service.sample(c, seed=s)
                for i, c in enumerate(counts)
            ])
            stats = service.stats()["batcher"]
        assert stats["batch_size_max"] > 1
        for i, c in enumerate(counts):
            assert (batched[i] == sequential_sample(model, c, 40 + i)).all()

    def test_sample_matches_model_sample_api(self, vae_checkpoint):
        # The service's per-request semantics ARE model.sample's.
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.0) as service:
            model = service.registry.load(vae_checkpoint).model
            served = service.sample(5, seed=9)
        direct = model.sample(5, np.random.default_rng(9))
        assert (served == np.asarray(direct).reshape(5, 8, 8)).all()

    def test_encode(self, vae_checkpoint):
        rng = np.random.default_rng(1)
        chunks = [rng.normal(size=(n, 64)) for n in (2, 5, 3, 4)]
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=self.FLUSH) as service:
            batched = run_concurrently([
                lambda x=x: service.encode(x) for x in chunks
            ])
            sequential = [service.encode(x) for x in chunks]
            stats = service.stats()["batcher"]
        assert stats["batch_size_max"] > 1
        for got, expected in zip(batched, sequential):
            assert got.shape == expected.shape
            assert (got == expected).all()

    def test_score(self, vae_checkpoint):
        rng = np.random.default_rng(2)
        chunks = [rng.uniform(size=(n, 8, 8)) for n in (3, 6, 2)]
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=self.FLUSH) as service:
            batched = run_concurrently([
                lambda m=m: service.score(m) for m in chunks
            ])
            stats = service.stats()["batcher"]
        assert stats["batch_size_max"] > 1
        for got, matrices in zip(batched, chunks):
            expected = per_molecule_scores(matrices)
            for name in ("usable", "qed", "logp", "sa"):
                assert (got[name] == expected[name]).all()

    def test_mixed_kinds_in_one_window_stay_separated(self, vae_checkpoint):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(4, 64))
        matrices = rng.uniform(size=(3, 8, 8))
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=self.FLUSH) as service:
            model = service.registry.load(vae_checkpoint).model
            sample, latents, scores = run_concurrently([
                lambda: service.sample(4, seed=11),
                lambda: service.encode(features),
                lambda: service.score(matrices),
            ])
            stats = service.stats()["batcher"]
        assert stats["groups"] >= 3  # kinds never share an executor call
        assert (sample == sequential_sample(model, 4, 11)).all()
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.0) as solo:
            assert (latents == solo.encode(features)).all()
        expected = per_molecule_scores(matrices)
        for name in expected:
            assert (scores[name] == expected[name]).all()


class TestValidation:
    def test_sample_rejects_plain_autoencoder(self, tmp_path):
        path = save_module(
            ClassicalAE(input_dim=64, latent_dim=6,
                        rng=np.random.default_rng(0)),
            tmp_path / "ae",
            metadata={"model": "ae", "input_dim": 64, "n_patches": 4,
                      "n_layers": 3, "latent_dim": 6, "seed": 0},
        )
        with GenerationService(default_checkpoint=path) as service:
            with pytest.raises(TypeError, match="vanilla autoencoder"):
                service.sample(3)

    def test_sample_rejects_nonpositive_count(self, vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint) as service:
            with pytest.raises(ValueError, match="count must be a positive"):
                service.sample(0)

    def test_encode_rejects_wrong_width(self, vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint) as service:
            with pytest.raises(ValueError, match=r"expected \(n, 64\)"):
                service.encode(np.zeros((2, 10)))

    def test_score_rejects_non_square(self, vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint) as service:
            with pytest.raises(ValueError, match="matrix stack"):
                service.score(np.zeros((2, 8, 9)))

    def test_no_default_and_no_checkpoint_is_an_error(self):
        with GenerationService() as service:
            with pytest.raises(ServingError, match="no checkpoint named"):
                service.sample(1)

    def test_per_call_checkpoint_overrides_default(self, vae_checkpoint,
                                                   sq_vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.0) as service:
            out = service.sample(2, seed=1, checkpoint=sq_vae_checkpoint)
            model = service.registry.load(sq_vae_checkpoint).model
            assert (out == sequential_sample(model, 2, 1)).all()
            assert len(service.registry) == 2


class TestServiceLifecycle:
    def test_stats_shape(self, vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint) as service:
            service.sample(2, seed=0)
            stats = service.stats()
        assert set(stats) == {"batcher", "registry", "models"}
        assert stats["models"] == 1
        assert stats["batcher"]["requests"] == 1
        assert stats["registry"]["misses"] == 1

    def test_async_variants_return_futures(self, vae_checkpoint):
        rng = np.random.default_rng(4)
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.05) as service:
            sample = service.sample_async(2, seed=5)
            encode = service.encode_async(rng.normal(size=(2, 64)))
            score = service.score_async(rng.uniform(size=(2, 8, 8)))
            assert sample.result(10.0).shape == (2, 8, 8)
            assert encode.result(10.0).shape == (2, 6)
            assert score.result(10.0)["qed"].shape == (2,)

    def test_shared_registry_across_services(self, vae_checkpoint):
        registry = ModelRegistry()
        with GenerationService(registry,
                               default_checkpoint=vae_checkpoint):
            pass
        with GenerationService(registry,
                               default_checkpoint=vae_checkpoint):
            pass
        assert registry.stats.misses == 1
        assert registry.stats.hits == 1


class TestClient:
    def test_in_process_client_round_trip(self, vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.0) as service:
            client = Client(service)
            model = service.registry.load(vae_checkpoint).model
            assert (client.sample(3, seed=2)
                    == sequential_sample(model, 3, 2)).all()
            assert client.encode(np.ones((2, 64))).shape == (2, 6)
            scores = client.score(np.zeros((2, 8, 8)))
            assert scores["usable"].dtype == bool
            assert client.stats()["models"] == 1

    def test_client_pins_a_checkpoint(self, vae_checkpoint,
                                      sq_vae_checkpoint):
        with GenerationService(default_checkpoint=vae_checkpoint,
                               flush_window=0.0) as service:
            client = Client(service, checkpoint=sq_vae_checkpoint)
            model = service.registry.load(sq_vae_checkpoint).model
            assert (client.sample(2, seed=3)
                    == sequential_sample(model, 2, 3)).all()
