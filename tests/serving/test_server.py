"""Tests for the JSON-lines TCP front end and its network client."""

import threading

import numpy as np
import pytest

from repro.models import ClassicalAE, ClassicalVAE
from repro.nn import save_module
from repro.serving import (
    GenerationServer,
    GenerationService,
    NetworkClient,
    ServingError,
    per_molecule_scores,
)


@pytest.fixture(scope="module")
def vae_checkpoint(tmp_path_factory):
    model = ClassicalVAE(input_dim=64, latent_dim=6,
                         rng=np.random.default_rng(0))
    return save_module(
        model, tmp_path_factory.mktemp("srv") / "vae",
        metadata={"model": "vae", "input_dim": 64, "n_patches": 4,
                  "n_layers": 3, "latent_dim": 6, "seed": 0},
    )


@pytest.fixture()
def server(vae_checkpoint):
    service = GenerationService(default_checkpoint=vae_checkpoint,
                                flush_window=0.002)
    srv = GenerationServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=srv.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        service.close()
        thread.join(timeout=5.0)


def client_for(server):
    host, port = server.server_address[:2]
    return NetworkClient(host, port, timeout=30.0)


class TestWireProtocol:
    def test_ping(self, server):
        with client_for(server) as client:
            assert client.ping()

    def test_sample_matches_in_process(self, server, vae_checkpoint):
        with client_for(server) as client:
            over_wire = client.sample(4, seed=8)
        entry = server.service.registry.load(vae_checkpoint)
        direct = server.service.sample(4, seed=8)
        assert over_wire.shape == (4, 8, 8)
        # JSON round-trips float64 exactly (repr-based), so even the wire
        # path preserves plain equality.
        assert (over_wire == direct).all()
        assert entry.matrix_size() == 8

    def test_encode_round_trip(self, server):
        features = np.random.default_rng(1).normal(size=(3, 64))
        with client_for(server) as client:
            latents = client.encode(features)
        assert (latents == server.service.encode(features)).all()

    def test_score_round_trip(self, server):
        matrices = np.random.default_rng(2).uniform(size=(3, 8, 8))
        with client_for(server) as client:
            scores = client.score(matrices)
        expected = per_molecule_scores(matrices)
        for name in expected:
            assert (scores[name] == expected[name]).all()

    def test_stats_over_wire(self, server):
        with client_for(server) as client:
            client.sample(2, seed=0)
            stats = client.stats()
        assert stats["models"] == 1
        assert stats["batcher"]["requests"] >= 1

    def test_multiple_requests_per_connection(self, server):
        with client_for(server) as client:
            first = client.sample(2, seed=1)
            second = client.sample(2, seed=1)
        assert (first == second).all()

    def test_concurrent_connections_micro_batch(self, server):
        results = {}

        def one(seed):
            with client_for(server) as client:
                results[seed] = client.sample(3, seed=seed)

        threads = [threading.Thread(target=one, args=(s,)) for s in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for seed in range(5):
            assert (results[seed] == server.service.sample(3, seed=seed)).all()


class TestWireErrors:
    def test_unknown_kind_is_bad_request(self, server):
        with client_for(server) as client:
            with pytest.raises(ServingError, match="unknown request kind"):
                client._request({"kind": "teleport"})

    def test_bad_shape_is_bad_request(self, server):
        with client_for(server) as client:
            with pytest.raises(ServingError, match="matrix stack"):
                client.score(np.zeros((2, 8, 9)))

    def test_invalid_json_reported_not_fatal(self, server):
        with client_for(server) as client:
            client._file.write("this is not json\n")
            client._file.flush()
            import json

            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"] == "bad_request"
            assert client.ping()  # connection survives

    def test_sample_from_plain_ae_maps_to_bad_request(self, tmp_path):
        path = save_module(
            ClassicalAE(input_dim=64, latent_dim=6,
                        rng=np.random.default_rng(0)),
            tmp_path / "ae",
            metadata={"model": "ae", "input_dim": 64, "n_patches": 4,
                      "n_layers": 3, "latent_dim": 6, "seed": 0},
        )
        service = GenerationService(default_checkpoint=path)
        srv = GenerationServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=srv.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        try:
            with client_for(srv) as client:
                with pytest.raises(ServingError,
                                   match="vanilla autoencoder"):
                    client.sample(2)
        finally:
            srv.shutdown()
            srv.server_close()
            service.close()
            thread.join(timeout=5.0)


class TestLifetime:
    def test_max_requests_shuts_the_server_down(self, vae_checkpoint):
        service = GenerationService(default_checkpoint=vae_checkpoint,
                                    flush_window=0.002)
        srv = GenerationServer(("127.0.0.1", 0), service, max_requests=3)
        thread = threading.Thread(target=srv.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        try:
            with client_for(srv) as client:
                for __ in range(3):  # pings count toward the budget
                    client.ping()
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        finally:
            srv.server_close()
            service.close()
