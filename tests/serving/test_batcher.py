"""Tests for the micro-batching request queue."""

import threading
import time

import pytest

from repro.serving import (
    MicroBatcher,
    QueueFull,
    RequestTimeout,
    ServiceClosed,
    ServingError,
)


def echo_executor(key, payloads):
    return [(key, p) for p in payloads]


class TestBatching:
    def test_single_request_round_trips(self):
        with MicroBatcher(echo_executor) as batcher:
            assert batcher.call(("k",), 7) == (("k",), 7)

    def test_concurrent_submits_fuse_into_one_batch(self):
        calls = []

        def execute(key, payloads):
            calls.append(list(payloads))
            return payloads

        # The first submit opens a batch; the flush window keeps it open
        # long enough for the rest to join.
        batcher = MicroBatcher(execute, flush_window=0.25)
        try:
            futures = [batcher.submit(("k",), i) for i in range(6)]
            assert [f.result(5.0) for f in futures] == list(range(6))
        finally:
            batcher.close()
        assert calls == [[0, 1, 2, 3, 4, 5]]
        assert batcher.stats.batches == 1
        assert batcher.stats.batch_size_max == 6
        assert batcher.stats.mean_batch_size == pytest.approx(6.0)

    def test_results_keep_submission_order_per_key(self):
        with MicroBatcher(echo_executor, flush_window=0.05) as batcher:
            futures = [batcher.submit(("k",), i) for i in range(10)]
            assert [f.result(5.0)[1] for f in futures] == list(range(10))

    def test_different_keys_never_share_an_execute_call(self):
        seen = []

        def execute(key, payloads):
            seen.append((key, list(payloads)))
            return payloads

        batcher = MicroBatcher(execute, flush_window=0.25)
        try:
            futures = [batcher.submit(("a",), 1), batcher.submit(("b",), 2),
                       batcher.submit(("a",), 3)]
            for future in futures:
                future.result(5.0)
        finally:
            batcher.close()
        assert dict(seen) == {("a",): [1, 3], ("b",): [2]}
        # One flush, split into two per-key execute calls.
        assert batcher.stats.batches == 1
        assert batcher.stats.groups == 2

    def test_max_batch_caps_a_flush(self):
        sizes = []

        def execute(key, payloads):
            sizes.append(len(payloads))
            return payloads

        batcher = MicroBatcher(execute, flush_window=0.1, max_batch=3)
        try:
            futures = [batcher.submit(("k",), i) for i in range(8)]
            for future in futures:
                future.result(5.0)
        finally:
            batcher.close()
        assert all(size <= 3 for size in sizes)
        assert sum(sizes) == 8
        assert batcher.stats.batch_size_max <= 3

    def test_zero_flush_window_still_works(self):
        with MicroBatcher(echo_executor, flush_window=0.0) as batcher:
            assert batcher.call(("k",), "x") == (("k",), "x")


class TestBackpressure:
    def test_queue_full_raises_instead_of_hanging(self):
        release = threading.Event()

        def gated(key, payloads):
            release.wait(5.0)
            return payloads

        batcher = MicroBatcher(gated, flush_window=0.0, max_queue=2,
                               max_batch=1)
        try:
            # The worker grabs the first request and blocks inside the
            # executor; further submits fill the bounded queue.
            batcher.submit(("k",), 0)
            time.sleep(0.05)
            with pytest.raises(QueueFull, match="2 pending"):
                for i in range(10):
                    batcher.submit(("k",), i)
        finally:
            release.set()
            batcher.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="flush_window"):
            MicroBatcher(echo_executor, flush_window=-0.1)
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(echo_executor, max_batch=0)
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(echo_executor, max_queue=0)


class TestTimeouts:
    def test_call_times_out_instead_of_hanging(self):
        release = threading.Event()

        def gated(key, payloads):
            release.wait(5.0)
            return payloads

        batcher = MicroBatcher(gated, flush_window=0.0)
        try:
            started = time.monotonic()
            with pytest.raises(RequestTimeout, match="did not complete"):
                batcher.call(("k",), 1, timeout=0.1)
            assert time.monotonic() - started < 2.0
        finally:
            release.set()
            batcher.close()

    def test_expired_in_queue_fails_without_executing(self):
        executed = []
        release = threading.Event()

        def gated(key, payloads):
            release.wait(5.0)
            executed.extend(payloads)
            return payloads

        batcher = MicroBatcher(gated, flush_window=0.0)
        try:
            blocker = batcher.submit(("k",), "blocker", timeout=None)
            time.sleep(0.05)
            doomed = batcher.submit(("k",), "doomed", timeout=0.01)
            time.sleep(0.1)  # deadline passes while it sits in the queue
            release.set()
            blocker.result(5.0)
            with pytest.raises(RequestTimeout, match="expired in the queue"):
                doomed.result(5.0)
        finally:
            batcher.close()
        assert "doomed" not in executed
        assert batcher.stats.expired == 1


class TestFailurePropagation:
    def test_executor_exception_reaches_every_caller(self):
        def boom(key, payloads):
            raise RuntimeError("kernel on fire")

        with MicroBatcher(boom, flush_window=0.05) as batcher:
            futures = [batcher.submit(("k",), i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="kernel on fire"):
                    future.result(5.0)

    def test_wrong_result_count_is_a_serving_error(self):
        def short(key, payloads):
            return payloads[:1]

        with MicroBatcher(short, flush_window=0.25) as batcher:
            futures = [batcher.submit(("k",), i) for i in range(2)]
            for future in futures:
                with pytest.raises(ServingError, match="1 results for 2"):
                    future.result(5.0)

    def test_failure_in_one_group_spares_the_other(self):
        def picky(key, payloads):
            if key == ("bad",):
                raise ValueError("no")
            return payloads

        with MicroBatcher(picky, flush_window=0.25) as batcher:
            bad = batcher.submit(("bad",), 1)
            good = batcher.submit(("good",), 2)
            assert good.result(5.0) == 2
            with pytest.raises(ValueError):
                bad.result(5.0)


class TestClose:
    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(echo_executor)
        batcher.close()
        with pytest.raises(ServiceClosed):
            batcher.submit(("k",), 1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo_executor)
        batcher.close()
        batcher.close()

    def test_context_manager_closes(self):
        with MicroBatcher(echo_executor) as batcher:
            pass
        with pytest.raises(ServiceClosed):
            batcher.submit(("k",), 1)

    def test_stats_as_dict_shape(self):
        with MicroBatcher(echo_executor) as batcher:
            batcher.call(("k",), 1)
            stats = batcher.stats.as_dict()
        assert stats["batches"] == 1
        assert stats["requests"] == 1
        assert stats["mean_batch_size"] == 1.0
        assert set(stats) == {"batches", "requests", "groups", "expired",
                              "mean_batch_size", "batch_size_max"}
