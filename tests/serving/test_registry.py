"""Tests for the warm checkpoint registry."""

import shutil

import numpy as np
import pytest

from repro.models import ClassicalVAE, ScalableQuantumVAE
from repro.nn import save_module
from repro.serving import ModelRegistry


def vae(seed=0, dtype=None):
    return ClassicalVAE(input_dim=64, latent_dim=6,
                        rng=np.random.default_rng(seed), dtype=dtype)


def checkpoint(tmp_path, name="vae", seed=0, dtype=None, **extra):
    metadata = {"model": "vae", "input_dim": 64, "n_patches": 4,
                "n_layers": 3, "latent_dim": 6, "seed": seed, **extra}
    return save_module(vae(seed=seed, dtype=dtype), tmp_path / name,
                       metadata=metadata)


class TestLoad:
    def test_load_returns_live_entry(self, tmp_path):
        registry = ModelRegistry()
        entry = registry.load(checkpoint(tmp_path))
        assert entry.is_variational
        assert entry.input_dim == 64
        assert entry.latent_dim == 6
        assert entry.matrix_size() == 8
        assert registry.stats.misses == 1

    def test_repeat_load_is_a_cache_hit(self, tmp_path):
        registry = ModelRegistry()
        path = checkpoint(tmp_path)
        first = registry.load(path)
        second = registry.load(path)
        assert second is first  # same live module, not a re-deserialization
        assert registry.stats.hits == 1
        assert registry.stats.misses == 1

    def test_bare_path_resolves_npz(self, tmp_path):
        registry = ModelRegistry()
        path = checkpoint(tmp_path)
        entry = registry.load(str(path)[: -len(".npz")])
        assert entry is registry.load(path)

    def test_identical_copies_share_one_entry(self, tmp_path):
        registry = ModelRegistry()
        path = checkpoint(tmp_path)
        copy = tmp_path / "copy.npz"
        shutil.copy2(path, copy)
        first = registry.load(path)
        second = registry.load(copy)
        # Byte-identical checkpoints fingerprint-collide on purpose.
        assert second is first
        assert len(registry) == 1

    def test_missing_file_names_probed_path(self, tmp_path):
        registry = ModelRegistry()
        missing = tmp_path / "nope"
        with pytest.raises(FileNotFoundError,
                           match=f"checkpoint not found: {missing}.npz"):
            registry.load(missing)

    def test_checkpoint_without_metadata_rejected(self, tmp_path):
        path = save_module(vae(), tmp_path / "bare")  # no metadata at all
        with pytest.raises(ValueError, match="no architecture metadata"):
            ModelRegistry().load(path)


class TestEviction:
    def test_lru_evicts_oldest(self, tmp_path):
        registry = ModelRegistry(max_entries=2)
        paths = [checkpoint(tmp_path, name=f"m{i}", seed=i) for i in range(3)]
        for path in paths:
            registry.load(path)
        assert len(registry) == 2
        assert registry.stats.evictions == 1
        # The evicted checkpoint reloads as a fresh miss.
        registry.load(paths[0])
        assert registry.stats.misses == 4

    def test_recent_use_protects_from_eviction(self, tmp_path):
        registry = ModelRegistry(max_entries=2)
        paths = [checkpoint(tmp_path, name=f"m{i}", seed=i) for i in range(2)]
        first = registry.load(paths[0])
        registry.load(paths[1])
        registry.load(paths[0])  # touch: now most-recent
        registry.load(checkpoint(tmp_path, name="m2", seed=2))
        assert registry.load(paths[0]) is first  # still warm
        assert registry.stats.evictions == 1

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            ModelRegistry(max_entries=0)


class TestPrecisionRebuild:
    def test_float32_checkpoint_rebuilds_float32_module(self, tmp_path):
        path = checkpoint(tmp_path, dtype="float32", precision="float32")
        entry = ModelRegistry().load(path)
        assert entry.precision.name == "float32"
        for __, param in entry.model.named_parameters():
            assert param.data.dtype == np.float32

    def test_float32_load_does_not_warn(self, tmp_path):
        # The registry rebuilds at the recorded dtype, so the width-mismatch
        # warning (float32 weights into a float64 shell) must never fire.
        import warnings

        path = checkpoint(tmp_path, dtype="float32", precision="float32")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ModelRegistry().load(path)

    def test_recorded_backend_resolves(self, tmp_path):
        path = checkpoint(tmp_path, backend="threaded")
        entry = ModelRegistry().load(path)
        assert entry.backend is not None
        with entry.scope():
            pass  # scope() enters the recorded backend

    def test_no_backend_means_policy_scope(self, tmp_path):
        entry = ModelRegistry().load(checkpoint(tmp_path))
        assert entry.backend is None

    def test_precision_changes_cache_key(self, tmp_path):
        registry = ModelRegistry()
        a = registry.load(checkpoint(tmp_path, name="a", precision="float64"))
        b = registry.load(checkpoint(tmp_path, name="b",
                                     dtype="float32", precision="float32"))
        assert a.key != b.key
        assert len(registry) == 2


class TestRegister:
    def test_registered_model_served_like_loaded(self):
        registry = ModelRegistry()
        entry = registry.register(vae(seed=3), {"model": "vae"})
        assert entry.is_variational
        assert len(registry) == 1

    def test_registered_quantum_model_warms(self):
        model = ScalableQuantumVAE(input_dim=64, n_patches=4, n_layers=1,
                                   rng=np.random.default_rng(1))
        entry = ModelRegistry().register(model, {"model": "sq-vae"})
        # Warmup already lowered the plans; a real pass just reuses them.
        assert entry.matrix_size() == 8
