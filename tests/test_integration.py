"""End-to-end integration tests across the whole stack.

Each test exercises a complete user workflow: data -> model -> training ->
checkpoint -> sampling -> chemistry scoring, at miniature scale.
"""

import numpy as np
import pytest

from repro.chem import (
    decode_molecule,
    discretize,
    is_valid,
    novelty,
    sanitize_lenient,
    score_molecules,
)
from repro.chem.sa import default_fragment_table
from repro.data import load_pdbbind_ligands, load_qm9, train_test_split
from repro.evaluation import distribution_report, sample_molecules
from repro.models import (
    ClassicalVAE,
    FullyQuantumVAE,
    ScalableQuantumAE,
    ScalableQuantumVAE,
)
from repro.nn import load_module, module_fingerprint, save_module
from repro.training import TrainConfig, Trainer, evaluate_reconstruction


class TestQuantumPipelineQM9:
    """The paper's low-dimensional pipeline: F-BQ-VAE on normalized QM9."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = load_qm9(n_samples=96, seed=11).normalized()
        train, test = train_test_split(data, test_fraction=0.15, seed=11)
        model = FullyQuantumVAE(input_dim=64, n_layers=2,
                                rng=np.random.default_rng(11), noise_seed=11)
        config = TrainConfig(epochs=4, batch_size=16, quantum_lr=0.01,
                             classical_lr=0.01, seed=11)
        history = Trainer(model, config).fit(train, test_data=test)
        return model, train, test, history

    def test_loss_decreases(self, setup):
        __, __, __, history = setup
        assert history.train_losses[-1] <= history.train_losses[0]

    def test_test_loss_finite_and_small(self, setup):
        __, __, test, history = setup
        assert history.final_test_loss is not None
        assert history.final_test_loss < 0.01  # normalized-scale losses

    def test_samples_decode_to_molecules(self, setup):
        model, __, __, __ = setup
        samples = model.sample(10, np.random.default_rng(0))
        decoded = [
            decode_molecule(discretize(s.reshape(8, 8) * 30.0))
            for s in samples
        ]
        repaired = [sanitize_lenient(m) for m in decoded]
        assert any(m.num_atoms > 0 for m in repaired)
        assert all(m.num_atoms == 0 or is_valid(m) for m in repaired)


class TestScalablePipelinePDBbind:
    """The paper's headline pipeline: SQ-VAE on PDBbind ligands."""

    @pytest.fixture(scope="class")
    def setup(self):
        data = load_pdbbind_ligands(n_samples=48, seed=13)
        train, test = train_test_split(data, test_fraction=0.15, seed=13)
        model = ScalableQuantumVAE(input_dim=1024, n_patches=4, n_layers=2,
                                   rng=np.random.default_rng(13),
                                   noise_seed=13)
        model.init_output_bias(train.features.mean(axis=0))
        config = TrainConfig.paper_sq(epochs=2, seed=13)
        history = Trainer(model, config).fit(train, test_data=test)
        return model, train, test, history

    def test_trains(self, setup):
        __, __, __, history = setup
        assert history.train_losses[-1] < history.train_losses[0]

    def test_sampled_set_scores(self, setup):
        model, __, __, __ = setup
        molecules = sample_molecules(model, 20, np.random.default_rng(1))
        scores = score_molecules(molecules, table=default_fragment_table())
        assert scores.n_scored > 0
        assert 0 <= scores.qed <= 1

    def test_sample_distribution_comparable_to_train(self, setup):
        model, train, __, __ = setup
        generated = [
            sanitize_lenient(m)
            for m in sample_molecules(model, 20, np.random.default_rng(2))
        ]
        generated = [m for m in generated if m.num_atoms > 1]
        reference = [
            decode_molecule(matrix) for matrix in train.raw[:20]
        ]
        report = distribution_report(reference, generated)
        # Sanity: a barely-trained model is off by some distance, but the
        # report must be finite and bounded.
        assert np.isfinite(report.mean_normalized_distance)

    def test_novelty_against_training_set(self, setup):
        model, train, __, __ = setup
        generated = [
            sanitize_lenient(m)
            for m in sample_molecules(model, 15, np.random.default_rng(3))
        ]
        generated = [m for m in generated if m.num_atoms > 1]
        reference = [decode_molecule(matrix) for matrix in train.raw]
        value = novelty(generated, reference)
        assert 0.0 <= value <= 1.0


class TestCheckpointWorkflow:
    def test_train_save_load_resume(self, tmp_path):
        data = load_qm9(n_samples=48, seed=17)
        model = ClassicalVAE(input_dim=64, latent_dim=6,
                             rng=np.random.default_rng(17), noise_seed=17)
        config = TrainConfig(epochs=2, batch_size=16, classical_lr=0.01,
                             seed=17)
        Trainer(model, config).fit(data)
        path = save_module(model, tmp_path / "ckpt",
                           metadata={"epochs_done": 2})

        resumed = ClassicalVAE(input_dim=64, latent_dim=6,
                               rng=np.random.default_rng(99), noise_seed=17)
        meta = load_module(resumed, path)
        assert meta["epochs_done"] == 2
        assert module_fingerprint(resumed) == module_fingerprint(model)

        # Resuming training must continue to improve, not restart.
        before = evaluate_reconstruction(resumed, data)
        Trainer(resumed, config).fit(data)
        after = evaluate_reconstruction(resumed, data)
        assert after <= before * 1.05

    def test_quantum_checkpoint_reproduces_latents(self, tmp_path):
        data = load_qm9(n_samples=16, seed=19)
        model = ScalableQuantumAE(input_dim=64, n_patches=2, n_layers=1,
                                  rng=np.random.default_rng(19))
        path = save_module(model, tmp_path / "sq")
        clone = ScalableQuantumAE(input_dim=64, n_patches=2, n_layers=1,
                                  rng=np.random.default_rng(7))
        load_module(clone, path)
        from repro.nn import Tensor, no_grad

        with no_grad():
            a = model.encode(Tensor(data.features)).data
            b = clone.encode(Tensor(data.features)).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestDeterminism:
    """Seeded end-to-end runs must be bit-reproducible."""

    def _run(self):
        data = load_qm9(n_samples=32, seed=23)
        model = ClassicalVAE(input_dim=64, latent_dim=6,
                             rng=np.random.default_rng(23), noise_seed=23)
        config = TrainConfig(epochs=2, batch_size=16, classical_lr=0.01,
                             seed=23)
        history = Trainer(model, config).fit(data)
        samples = model.sample(5, np.random.default_rng(23))
        return history.train_losses, samples

    def test_repeatable(self):
        losses_a, samples_a = self._run()
        losses_b, samples_b = self._run()
        np.testing.assert_allclose(losses_a, losses_b, rtol=0, atol=0)
        np.testing.assert_allclose(samples_a, samples_b, rtol=0, atol=0)
