"""Tests for reconstruction metrics, sampling pipeline, and visualization."""

import numpy as np
import pytest

from repro.data import ArrayDataset, load_qm9
from repro.evaluation import (
    ascii_image,
    per_sample_mse,
    reconstruct_samples,
    reconstruction_report,
    render_molecule_matrix,
    sample_and_score,
    sample_matrices,
    sample_molecules,
    side_by_side,
)
from repro.models import ClassicalVAE
from repro.chem import encode_molecule, from_smiles


def tiny_vae(input_dim=64):
    return ClassicalVAE(input_dim=input_dim, latent_dim=4, hidden_dims=(16, 8),
                        rng=np.random.default_rng(0))


class TestReconstruction:
    def test_per_sample_mse_shape(self):
        model = tiny_vae()
        errors = per_sample_mse(model, np.zeros((5, 64)))
        assert errors.shape == (5,)
        assert (errors >= 0).all()

    def test_reconstruct_samples(self):
        model = tiny_vae()
        data = ArrayDataset(np.random.default_rng(1).normal(size=(20, 64)))
        originals, recons = reconstruct_samples(model, data, n_samples=3, seed=2)
        assert originals.shape == (3, 64)
        assert recons.shape == (3, 64)

    def test_reconstruct_samples_caps_at_dataset_size(self):
        model = tiny_vae()
        data = ArrayDataset(np.zeros((2, 64)))
        originals, __ = reconstruct_samples(model, data, n_samples=10)
        assert originals.shape[0] == 2

    def test_report_keys(self):
        model = tiny_vae()
        data = ArrayDataset(np.random.default_rng(3).normal(size=(10, 64)))
        report = reconstruction_report(model, data)
        assert set(report) == {"mean_mse", "median_mse", "worst_mse", "best_mse"}
        assert report["best_mse"] <= report["mean_mse"] <= report["worst_mse"]


class TestSampling:
    def test_sample_matrices_shape(self):
        model = tiny_vae(input_dim=64)
        matrices = sample_matrices(model, 6, np.random.default_rng(0))
        assert matrices.shape == (6, 8, 8)

    def test_sample_matrices_requires_square(self):
        model = tiny_vae(input_dim=48)
        with pytest.raises(ValueError):
            sample_matrices(model, 2, np.random.default_rng(0))

    def test_sample_molecules(self):
        model = tiny_vae()
        mols = sample_molecules(model, 5, np.random.default_rng(1))
        assert len(mols) == 5

    def test_sample_and_score_ranges(self):
        model = tiny_vae()
        scores = sample_and_score(model, 20, np.random.default_rng(2))
        assert scores.n_total == 20
        assert 0.0 <= scores.qed <= 1.0
        assert 0.0 <= scores.logp <= 1.0
        assert 0.0 <= scores.sa <= 1.0

    def test_sampling_seeded(self):
        model = tiny_vae()
        a = sample_matrices(model, 3, np.random.default_rng(9))
        b = sample_matrices(model, 3, np.random.default_rng(9))
        np.testing.assert_allclose(a, b)

    def test_trained_vae_samples_score_above_noise(self):
        # After a little training on QM9, decoded prior samples should look
        # more molecule-like (higher scored fraction) than raw noise output.
        from repro.training import TrainConfig, Trainer

        data = load_qm9(n_samples=96, seed=4)
        model = ClassicalVAE(input_dim=64, latent_dim=6, rng=np.random.default_rng(4))
        Trainer(model, TrainConfig(epochs=8, batch_size=16,
                                   classical_lr=0.01)).fit(data)
        scores = sample_and_score(model, 30, np.random.default_rng(5))
        assert scores.n_scored >= 15  # most samples decode to usable graphs


class TestVisualize:
    def test_ascii_image_shape(self):
        art = ascii_image(np.eye(4))
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 8 for line in lines)  # doubled width

    def test_ascii_image_flat_input(self):
        art = ascii_image(np.zeros(16))
        assert len(art.splitlines()) == 4

    def test_ascii_image_bad_size(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros(15))

    def test_ascii_image_constant(self):
        art = ascii_image(np.full((2, 2), 5.0))
        assert set(art.replace("\n", "")) == {" "}

    def test_render_molecule_matrix(self):
        mol = from_smiles("C=NO")
        text = render_molecule_matrix(encode_molecule(mol, 4))
        lines = text.splitlines()
        assert lines[0].split()[0] == "C"
        assert lines[1].split()[1] == "N"
        assert lines[2].split()[2] == "O"
        assert "2" in lines[0]  # the double bond code

    def test_render_truncates(self):
        text = render_molecule_matrix(np.zeros((10, 10), dtype=int), max_size=4)
        assert len(text.splitlines()) == 4

    def test_side_by_side(self):
        merged = side_by_side(["ab\ncd", "xy\nzw"], titles=["L", "R"], gap=2)
        lines = merged.splitlines()
        assert lines[0].startswith("L")
        assert "xy" in lines[1]

    def test_side_by_side_uneven_heights(self):
        merged = side_by_side(["a\nb\nc", "x"])
        assert len(merged.splitlines()) == 3

    def test_side_by_side_title_mismatch(self):
        with pytest.raises(ValueError):
            side_by_side(["a"], titles=["x", "y"])
