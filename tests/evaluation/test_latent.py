"""Tests for latent-space interpolation and neighborhood exploration."""

import numpy as np
import pytest

from repro.evaluation import (
    decode_to_molecules,
    encode_to_latent,
    interpolate_latent,
    latent_neighborhood,
)
from repro.models import ClassicalAE, ClassicalVAE


def vae():
    return ClassicalVAE(input_dim=64, latent_dim=4, hidden_dims=(16, 8),
                        rng=np.random.default_rng(0), noise_seed=0)


class TestEncode:
    def test_shape(self):
        codes = encode_to_latent(vae(), np.zeros((5, 64)))
        assert codes.shape == (5, 4)

    def test_single_sample_promoted(self):
        codes = encode_to_latent(vae(), np.zeros(64))
        assert codes.shape == (1, 4)

    def test_deterministic_for_vae(self):
        model = vae()
        x = np.random.default_rng(1).normal(size=(2, 64))
        np.testing.assert_allclose(encode_to_latent(model, x),
                                   encode_to_latent(model, x))


class TestInterpolation:
    def test_shape(self):
        model = vae()
        rng = np.random.default_rng(2)
        path = interpolate_latent(model, rng.normal(size=64),
                                  rng.normal(size=64), steps=5)
        assert path.shape == (5, 64)

    def test_endpoints_match_direct_decode(self):
        model = vae()
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=64), rng.normal(size=64)
        path = interpolate_latent(model, a, b, steps=3)
        from repro.nn import Tensor, no_grad

        codes = encode_to_latent(model, np.stack([a, b]))
        with no_grad():
            expected = model.decode(Tensor(codes)).data
        np.testing.assert_allclose(path[0], expected[0], atol=1e-12)
        np.testing.assert_allclose(path[-1], expected[1], atol=1e-12)

    def test_midpoint_between_endpoints_in_latent(self):
        model = vae()
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=64), rng.normal(size=64)
        codes = encode_to_latent(model, np.stack([a, b]))
        path_codes = 0.5 * (codes[0] + codes[1])
        # decoded midpoint equals decode of mean code by linearity of the
        # interpolation construction
        path = interpolate_latent(model, a, b, steps=3)
        from repro.nn import Tensor, no_grad

        with no_grad():
            mid = model.decode(Tensor(path_codes[None, :])).data[0]
        np.testing.assert_allclose(path[1], mid, atol=1e-12)

    def test_needs_two_steps(self):
        with pytest.raises(ValueError):
            interpolate_latent(vae(), np.zeros(64), np.ones(64), steps=1)

    def test_works_with_vanilla_ae(self):
        model = ClassicalAE(input_dim=64, latent_dim=4, hidden_dims=(16, 8),
                            rng=np.random.default_rng(5))
        path = interpolate_latent(model, np.zeros(64), np.ones(64), steps=4)
        assert path.shape == (4, 64)


class TestDecodeToMolecules:
    def test_roundtrip_via_matrices(self):
        from repro.chem import encode_molecule, from_smiles, same_molecule

        mol = from_smiles("CCO")
        flat = encode_molecule(mol, 8).reshape(1, 64).astype(float)
        decoded = decode_to_molecules(flat)
        assert len(decoded) == 1
        assert same_molecule(decoded[0], mol)

    def test_repair_flag(self):
        # An invalid continuous matrix decodes to something strictly valid
        # when repair=True.
        from repro.chem import is_valid

        rng = np.random.default_rng(6)
        flat = rng.normal(loc=0.4, scale=1.5, size=(3, 64))
        repaired = decode_to_molecules(flat, repair=True)
        assert all(m.num_atoms == 0 or is_valid(m) for m in repaired)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            decode_to_molecules(np.zeros((1, 60)))


class TestNeighborhood:
    def test_shape(self):
        out = latent_neighborhood(vae(), np.zeros(64), n_samples=6,
                                  radius=0.5, rng=np.random.default_rng(7))
        assert out.shape == (6, 64)

    def test_zero_radius_reproduces_decode(self):
        model = vae()
        x = np.random.default_rng(8).normal(size=64)
        out = latent_neighborhood(model, x, n_samples=3, radius=0.0,
                                  rng=np.random.default_rng(9))
        np.testing.assert_allclose(out[0], out[1], atol=1e-12)

    def test_larger_radius_more_spread(self):
        model = vae()
        x = np.random.default_rng(10).normal(size=64)
        near = latent_neighborhood(model, x, 20, radius=0.01,
                                   rng=np.random.default_rng(11))
        far = latent_neighborhood(model, x, 20, radius=2.0,
                                  rng=np.random.default_rng(11))
        assert far.std(axis=0).mean() > near.std(axis=0).mean()

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            latent_neighborhood(vae(), np.zeros(64), 2, radius=-1.0,
                                rng=np.random.default_rng(0))
