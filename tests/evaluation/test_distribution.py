"""Tests for descriptor-distribution comparison of molecule sets."""

import numpy as np
import pytest

from repro.chem import MoleculeSpec, random_molecules
from repro.evaluation import (
    DESCRIPTOR_NAMES,
    descriptor_matrix,
    distribution_report,
)


def small_set(seed, spec=None, n=25):
    return random_molecules(n, seed=seed, spec=spec)


class TestDescriptorMatrix:
    def test_shape(self):
        mols = small_set(0, n=10)
        matrix = descriptor_matrix(mols)
        assert matrix.shape == (10, len(DESCRIPTOR_NAMES))

    def test_empty_set(self):
        assert descriptor_matrix([]).shape == (0, len(DESCRIPTOR_NAMES))

    def test_columns_meaningful(self):
        mols = small_set(1, n=10)
        matrix = descriptor_matrix(mols)
        heavy = matrix[:, DESCRIPTOR_NAMES.index("heavy_atoms")]
        assert all(h == m.num_atoms for h, m in zip(heavy, mols))
        qed_column = matrix[:, DESCRIPTOR_NAMES.index("qed")]
        assert np.all((0 <= qed_column) & (qed_column <= 1))


class TestDistributionReport:
    def test_identical_sets_near_zero(self):
        mols = small_set(2)
        report = distribution_report(mols, mols)
        assert report.mean_normalized_distance == pytest.approx(0.0, abs=1e-12)

    def test_same_distribution_small_distance(self):
        a = small_set(3)
        b = small_set(4)
        report = distribution_report(a, b)
        assert report.mean_normalized_distance < 1.0

    def test_shifted_distribution_larger_distance(self):
        small_spec = MoleculeSpec(min_atoms=4, max_atoms=6)
        big_spec = MoleculeSpec(min_atoms=18, max_atoms=24)
        near = distribution_report(small_set(5, small_spec),
                                   small_set(6, small_spec))
        far = distribution_report(small_set(5, small_spec),
                                  small_set(7, big_spec))
        assert far.mean_normalized_distance > near.mean_normalized_distance

    def test_all_descriptors_reported(self):
        report = distribution_report(small_set(8), small_set(9))
        assert set(report.distances) == set(DESCRIPTOR_NAMES)

    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError):
            distribution_report([], small_set(0))

    def test_format_table(self):
        report = distribution_report(small_set(10), small_set(11))
        text = report.format_table()
        assert "MEAN" in text and "qed" in text
