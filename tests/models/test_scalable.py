"""Tests for the scalable (patched) quantum autoencoders."""

import numpy as np
import pytest

from repro.models import ScalableQuantumAE, ScalableQuantumVAE
from repro.nn import Tensor, functional as F


def rng():
    return np.random.default_rng(0)


def ligand_like_batch(n=3, dim=64, seed=1):
    """Sparse non-negative batch mimicking flattened molecule matrices."""
    gen = np.random.default_rng(seed)
    batch = np.zeros((n, dim))
    for row in batch:
        idx = gen.choice(dim, size=dim // 4, replace=False)
        row[idx] = gen.integers(1, 5, size=idx.size)
    return batch


class TestArchitecture:
    @pytest.mark.parametrize(
        "patches,expected_lsd", [(2, 18), (4, 32), (8, 56), (16, 96)]
    )
    def test_paper_latent_dims_at_1024(self, patches, expected_lsd):
        model = ScalableQuantumAE(input_dim=1024, n_patches=patches, n_layers=1,
                                  rng=rng())
        assert model.latent_dim == expected_lsd

    def test_default_depth_is_five(self):
        from repro.models import DEFAULT_SQ_LAYERS

        assert DEFAULT_SQ_LAYERS == 5
        assert ScalableQuantumAE(input_dim=64, n_patches=2, rng=rng()).n_layers == 5

    def test_quantum_weight_count(self):
        # p patches x 2 circuits x (3 * qubits * layers) rotation angles.
        model = ScalableQuantumAE(input_dim=64, n_patches=2, n_layers=3, rng=rng())
        counts = model.parameter_count_by_group()
        qubits = model.qubits_per_patch
        assert counts["quantum"] == 2 * 2 * 3 * qubits * 3

    def test_rejects_bad_patch_split(self):
        with pytest.raises(ValueError):
            ScalableQuantumAE(input_dim=1024, n_patches=3, rng=rng())


class TestForwardBackward:
    def test_ae_shapes_small(self):
        model = ScalableQuantumAE(input_dim=64, n_patches=4, n_layers=2, rng=rng())
        x = Tensor(ligand_like_batch(dim=64))
        out = model(x)
        assert out.reconstruction.shape == (3, 64)
        assert out.latent.shape == (3, model.latent_dim)

    def test_vae_shapes_small(self):
        model = ScalableQuantumVAE(input_dim=64, n_patches=4, n_layers=2, rng=rng())
        out = model(Tensor(ligand_like_batch(dim=64)))
        assert out.mu.shape == (3, model.latent_dim)
        assert out.logvar.shape == (3, model.latent_dim)

    def test_handles_zero_patches(self):
        # A batch row whose second half is all zero: the empty patch must
        # embed via the fallback rather than raising.
        model = ScalableQuantumAE(input_dim=64, n_patches=2, n_layers=1, rng=rng())
        x = np.zeros((1, 64))
        x[0, :8] = 1.0  # only patch 0 is populated
        out = model(Tensor(x))
        assert np.all(np.isfinite(out.reconstruction.data))

    def test_gradients_reach_all_parameters(self):
        model = ScalableQuantumVAE(input_dim=64, n_patches=2, n_layers=1, rng=rng())
        x = Tensor(ligand_like_batch(dim=64))
        out = model(x)
        loss = F.mse_loss(out.reconstruction, x) + F.gaussian_kl(out.mu, out.logvar)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_vae_sample_shape(self):
        model = ScalableQuantumVAE(input_dim=64, n_patches=2, n_layers=1, rng=rng())
        samples = model.sample(5, np.random.default_rng(2))
        assert samples.shape == (5, 64)

    def test_1024_forward(self):
        model = ScalableQuantumAE(input_dim=1024, n_patches=16, n_layers=1, rng=rng())
        x = Tensor(ligand_like_batch(n=2, dim=1024))
        out = model(x)
        assert out.reconstruction.shape == (2, 1024)

    def test_training_reduces_loss(self):
        from repro.data import ArrayDataset
        from repro.training import TrainConfig, Trainer

        data = ArrayDataset(ligand_like_batch(n=24, dim=64, seed=3))
        model = ScalableQuantumAE(input_dim=64, n_patches=4, n_layers=1, rng=rng())
        trainer = Trainer(
            model, TrainConfig(epochs=10, batch_size=8, quantum_lr=0.03,
                               classical_lr=0.01, seed=0)
        )
        history = trainer.fit(data)
        assert history.train_losses[-1] < history.train_losses[0] * 0.85
