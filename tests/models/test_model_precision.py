"""Every model's dtype knob must reach every parameter (no silent float64)."""

import numpy as np
import pytest

from repro.models import (
    ClassicalAE,
    ClassicalVAE,
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
    ScalableQuantumAE,
    ScalableQuantumVAE,
)
from repro.nn import Tensor

MODELS = [
    lambda: ClassicalAE(input_dim=16, latent_dim=3, hidden_dims=(8,),
                        rng=np.random.default_rng(0), dtype="float32"),
    lambda: ClassicalVAE(input_dim=16, latent_dim=3, hidden_dims=(8,),
                         rng=np.random.default_rng(0), dtype="float32"),
    lambda: FullyQuantumAE(input_dim=16, n_layers=1,
                           rng=np.random.default_rng(0), dtype="float32"),
    lambda: FullyQuantumVAE(input_dim=16, n_layers=1,
                            rng=np.random.default_rng(0), dtype="float32"),
    lambda: HybridQuantumAE(input_dim=16, n_layers=1,
                            rng=np.random.default_rng(0), dtype="float32"),
    lambda: HybridQuantumVAE(input_dim=16, n_layers=1,
                             rng=np.random.default_rng(0), dtype="float32"),
    lambda: ScalableQuantumAE(input_dim=16, n_patches=2, n_layers=1,
                              rng=np.random.default_rng(0), dtype="float32"),
    lambda: ScalableQuantumVAE(input_dim=16, n_patches=2, n_layers=1,
                               rng=np.random.default_rng(0), dtype="float32"),
]


@pytest.mark.parametrize("factory", MODELS)
def test_float32_knob_reaches_every_parameter(factory):
    model = factory()
    for name, param in model.named_parameters():
        assert param.data.dtype == np.float32, name
    x = np.abs(np.random.default_rng(1).normal(size=(2, 16))) + 0.05
    out = model(Tensor(x, dtype=np.float32))
    assert out.reconstruction.data.dtype == np.float32
    assert out.latent.data.dtype == np.float32


@pytest.mark.parametrize("factory", MODELS)
def test_warm_start_bias_keeps_parameter_dtype(factory):
    # init_output_bias used to cast the float64 feature mean straight into
    # the bias, silently widening float32 models (the checkpoint then
    # recorded mixed widths and reloading warned of a dtype mismatch).
    model = factory()
    if not model.init_output_bias(
        np.random.default_rng(2).normal(size=16).astype(np.float64)
    ):
        pytest.skip("model has no classical output bias")
    for name, param in model.named_parameters():
        assert param.data.dtype == np.float32, name
