"""Tests for the classical and baseline quantum autoencoders.

Includes the Table I parameter-count checks — the strongest architectural
fingerprints the paper gives us.
"""

import numpy as np
import pytest

from repro.models import (
    ClassicalAE,
    ClassicalVAE,
    FullyQuantumAE,
    FullyQuantumVAE,
    HybridQuantumAE,
    HybridQuantumVAE,
)
from repro.nn import Tensor


def rng():
    return np.random.default_rng(0)


class TestClassicalArchitecture:
    def test_ae_shapes(self):
        model = ClassicalAE(rng=rng())
        out = model(Tensor(np.zeros((4, 64))))
        assert out.reconstruction.shape == (4, 64)
        assert out.latent.shape == (4, 6)
        assert out.mu is None

    def test_vae_shapes(self):
        model = ClassicalVAE(rng=rng())
        out = model(Tensor(np.zeros((4, 64))))
        assert out.reconstruction.shape == (4, 64)
        assert out.mu.shape == (4, 6)
        assert out.logvar.shape == (4, 6)

    def test_ae_param_count_structure(self):
        # Encoder 64-32-16-6 + decoder 6-16-32-64 = 5478 trainable weights.
        # (The paper prints 5610; the +132 delta is unexplained by the text —
        # see DESIGN.md "Architecture accounting".)
        model = ClassicalAE(rng=rng())
        assert model.num_parameters() == 5478

    def test_vae_is_ae_plus_84(self):
        # Table I: VAE - AE = 84 (two Linear(6, 6) heads) — this the paper
        # pins down exactly and we match it.
        ae = ClassicalAE(rng=rng())
        vae = ClassicalVAE(rng=rng())
        assert vae.num_parameters() - ae.num_parameters() == 84

    def test_all_params_classical_group(self):
        counts = ClassicalVAE(rng=rng()).parameter_count_by_group()
        assert counts["quantum"] == 0
        assert counts["classical"] == counts["total"]

    def test_1024_dim_construction(self):
        model = ClassicalAE(input_dim=1024, latent_dim=16, rng=rng())
        out = model(Tensor(np.zeros((2, 1024))))
        assert out.reconstruction.shape == (2, 1024)
        assert model.hidden_dims == (256, 64)

    def test_ae_sample_raises(self):
        with pytest.raises(TypeError):
            ClassicalAE(rng=rng()).sample(5, np.random.default_rng(0))

    def test_vae_sample_shape(self):
        model = ClassicalVAE(rng=rng())
        samples = model.sample(7, np.random.default_rng(1))
        assert samples.shape == (7, 64)

    def test_vae_reparameterization_is_seeded(self):
        a = ClassicalVAE(rng=rng(), noise_seed=3)
        b = ClassicalVAE(rng=rng(), noise_seed=3)
        x = Tensor(np.ones((2, 64)))
        np.testing.assert_allclose(a(x).latent.data, b(x).latent.data)

    def test_vae_encode_is_posterior_mean(self):
        model = ClassicalVAE(rng=rng())
        x = Tensor(np.ones((2, 64)))
        mu, __ = model.encode_distribution(x)
        np.testing.assert_allclose(model.encode(x).data, mu.data)


class TestTable1Counts:
    """Exact reproductions of the derivable Table I entries."""

    def test_f_bq_ae(self):
        counts = FullyQuantumAE(rng=rng()).parameter_count_by_group()
        assert counts == {"quantum": 108, "classical": 0, "total": 108}

    def test_f_bq_vae(self):
        counts = FullyQuantumVAE(rng=rng()).parameter_count_by_group()
        assert counts == {"quantum": 108, "classical": 84, "total": 192}

    def test_h_bq_ae(self):
        counts = HybridQuantumAE(rng=rng()).parameter_count_by_group()
        assert counts == {"quantum": 108, "classical": 4202, "total": 4310}

    def test_h_bq_vae(self):
        counts = HybridQuantumVAE(rng=rng()).parameter_count_by_group()
        assert counts == {"quantum": 108, "classical": 4286, "total": 4394}


class TestBaselineQuantumBehaviour:
    def test_f_bq_ae_outputs_probabilities(self):
        model = FullyQuantumAE(rng=rng())
        x = np.abs(np.random.default_rng(2).normal(size=(3, 64))) + 0.01
        out = model(Tensor(x))
        np.testing.assert_allclose(
            out.reconstruction.data.sum(axis=1), np.ones(3), atol=1e-10
        )

    def test_f_bq_latent_bounded(self):
        model = FullyQuantumAE(rng=rng())
        x = np.abs(np.random.default_rng(3).normal(size=(3, 64))) + 0.01
        latent = model.encode(Tensor(x))
        assert np.all(np.abs(latent.data) <= 1.0 + 1e-10)

    def test_h_bq_ae_reaches_original_scale(self):
        # The hybrid's final FC must be able to exceed 1, unlike F-BQ.
        model = HybridQuantumAE(rng=rng())
        model.output_map.weight.data *= 0.0
        model.output_map.bias.data = np.full(64, 7.0)
        x = np.abs(np.random.default_rng(4).normal(size=(2, 64))) + 0.01
        out = model(Tensor(x))
        np.testing.assert_allclose(out.reconstruction.data, 7.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FullyQuantumAE(input_dim=60)

    def test_f_bq_vae_sample(self):
        model = FullyQuantumVAE(rng=rng())
        samples = model.sample(4, np.random.default_rng(5))
        assert samples.shape == (4, 64)
        np.testing.assert_allclose(samples.sum(axis=1), np.ones(4), atol=1e-10)

    def test_gradients_reach_all_parameters(self):
        from repro.nn import functional as F

        model = HybridQuantumVAE(rng=rng())
        x = Tensor(np.abs(np.random.default_rng(6).normal(size=(2, 64))) + 0.01)
        out = model(x)
        loss = F.mse_loss(out.reconstruction, x) + F.gaussian_kl(out.mu, out.logvar)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_1024_dim_baseline_builds(self):
        # Fig. 5(a) uses the baseline architecture at 1024 features (10 qubits).
        model = HybridQuantumAE(input_dim=1024, rng=rng())
        assert model.latent_dim == 10
        x = np.abs(np.random.default_rng(7).normal(size=(2, 1024))) + 0.01
        out = model(Tensor(x))
        assert out.reconstruction.shape == (2, 1024)
