"""Autodiff-regression runner: time the tape vs the closure design.

The tape refactor replaced per-op backward closures with a recorded graph
of registered primitives (:mod:`repro.nn.autodiff`).  That swap must not
tax the classical training step: this runner times identical
forward+backward workloads on the new tape ``Tensor`` and on the frozen
pre-refactor closure implementation vendored in
:mod:`closure_baseline`, derives tape-vs-closure speedups for every
``<name>`` / ``<name>_closure`` pair, and writes everything to
``BENCH_autodiff.json`` at the repo root — the file future PRs diff
against.

Paired workloads are timed *interleaved*: each round runs the tape step
then the closure step back to back, and the reported speedup is the
median of the per-round ratios.  Adjacent steps see the same machine
state, so the ratio is insensitive to the CPU-frequency drift that makes
two separately-timed minima incomparable on shared runners — which
matters here because the floors are parity (1.0x), not a wide multiple.

A second family of pairs gates the tape *compiler*
(:mod:`repro.nn.graph`): the same step timed with ``set_tape_compile``
off (the reference tape walk) and on (the cached ``GraphPlan`` with fused
elementwise runs, plan-owned cotangent/edge/temp buffers, and matmul
``out=`` edges).  Those ratios land in ``speedup_compiled_vs_tape`` and
carry real multiples in :data:`COMPILED_FLOORS` — the compiler exists to
win, not to break even — on three workloads: a deep tanh MLP, a long
elementwise chain, and a hybrid train step (patched quantum amplitude
encoder feeding a deep classical decoder, the MolQAE-style shape).

Alongside the paired workloads it records two absolute timings with no
baseline pair: the full SQ-AE hybrid train step (the number that matters
end to end; quantum statevector work dominates it, so it is tracked
absolute rather than floored against the compiler) and a Hessian-vector
product on an MLP (the higher-order capability the tape added; the
closure design cannot run it at all).

Each payload is stamped with the git commit it was generated at plus the
CPU count and BLAS vendor (floors are only meaningful on comparable
machines), and ``--check`` turns the runner into a perf-regression gate:
it fails (exit 1) when any measured tape-vs-closure speedup drops below
its floor in :data:`SPEEDUP_FLOORS` (parity, 1.0x — the tape refactor's
contract is "no classical-step overhead") or any compiled-vs-tape
speedup drops below its floor in :data:`COMPILED_FLOORS`.

Usage::

    PYTHONPATH=src python benchmarks/run_autodiff.py [--only SUBSTR]
        [--rounds N] [--output PATH] [--check]
"""

from __future__ import annotations

import argparse
import inspect
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_machine import machine_stamp  # noqa: E402

_CLOSURE_SUFFIX = "_closure"

# Floors asserted by --check: the measured speedup of each tape workload
# over its ``*_closure`` twin must stay at or above these.  Both sit at
# exactly 1.0 by design — the tape refactor promised gradient parity at no
# classical-step cost, so the gate is "never slower than the design it
# replaced" rather than a headline win.  (Measured medians land at
# ~1.05-1.3x: the tape's generic walk skips per-op closure allocation and
# adopts intermediate cotangents without the defensive copy the closure
# design paid per node.)
SPEEDUP_FLOORS = {
    "bench_mlp_fwd_bwd": 1.0,
    "bench_elementwise_chain_fwd_bwd": 1.0,
}

# Floors for the compiled-vs-tape pairs: unlike the parity floors above,
# the plan compiler must deliver a real multiple over the walk it caches.
# Set from measured medians (~1.39x / ~1.76x / ~1.40x on the reference
# 1-core OpenBLAS runner) with margin for scheduler noise.  The hybrid
# floor is the lowest: the quantum encoder's statevector passes run as
# one opaque VJP node on both sides of the ratio and dilute the classical
# win the compiler is responsible for.
COMPILED_FLOORS = {
    "bench_compiled_mlp_fwd_bwd": 1.3,
    "bench_compiled_elementwise_chain": 1.3,
    "bench_compiled_hybrid_train_step": 1.15,
}


def git_commit() -> str | None:
    """The commit the benchmarked tree is based on, or None outside git.

    Suffixed with ``-dirty`` when the working tree has uncommitted changes,
    so BENCH_autodiff.json never attributes numbers measured on modified
    code to a clean commit.
    """
    def _git(*args):
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    head = _git("rev-parse", "HEAD")
    if head is None:
        return None
    status = _git("status", "--porcelain")
    dirty = "-dirty" if status is None or status.strip() else ""
    return head.strip() + dirty


class TimerShim:
    """Duck-types the pytest-benchmark fixture: ``benchmark(fn)`` times
    min/mean over ``rounds`` calls after one warmup (the warmup also absorbs
    one-time work like quantum plan compilation)."""

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.stats: dict[str, float] | None = None

    def __call__(self, fn):
        result = fn()  # warmup
        times = []
        for _ in range(self.rounds):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": self.rounds,
        }
        return result


def _stats(times: list) -> dict:
    return {
        "min_s": min(times),
        "mean_s": sum(times) / len(times),
        "max_s": max(times),
        "rounds": len(times),
    }


def run_pair(builder, rounds: int):
    """Time a paired workload interleaved: tape step, closure step, repeat.

    Returns ``(tape_stats, closure_stats, median_ratio)`` where the ratio
    is closure-time / tape-time per round — the drift-insensitive speedup
    the floors gate on.
    """
    from repro.nn.tensor import Tensor
    from closure_baseline import ClosureTensor

    tape_step = builder(Tensor)
    closure_step = builder(ClosureTensor)
    tape_step()  # warmup both sides
    closure_step()
    tape_times, closure_times, ratios = [], [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        tape_step()
        t1 = time.perf_counter()
        closure_step()
        t2 = time.perf_counter()
        tape_times.append(t1 - t0)
        closure_times.append(t2 - t1)
        ratios.append((t2 - t1) / (t1 - t0))
    return _stats(tape_times), _stats(closure_times), statistics.median(ratios)


# ----------------------------------------------------------------------
# Paired workloads: identical math on the tape Tensor and the frozen
# closure baseline.  Each builder takes the tensor class and returns a
# zero-arg step closure doing one full forward+backward; parameters
# persist across rounds (grads are cleared each step) so what gets timed
# is the steady-state training cost.
# ----------------------------------------------------------------------

_MLP_DIMS = (128, 256, 64)  # in -> hidden -> out
_MLP_BATCH = 64
_CHAIN_SHAPE = (64, 128)
_CHAIN_DEPTH = 30


def _mlp_step(tensor_cls):
    rng = np.random.default_rng(0)
    d_in, d_hidden, d_out = _MLP_DIMS
    x = tensor_cls(rng.normal(size=(_MLP_BATCH, d_in)))
    y = tensor_cls(rng.normal(size=(_MLP_BATCH, d_out)))
    w1 = tensor_cls(rng.normal(size=(d_in, d_hidden)) * 0.1, requires_grad=True)
    b1 = tensor_cls(np.zeros(d_hidden), requires_grad=True)
    w2 = tensor_cls(rng.normal(size=(d_hidden, d_out)) * 0.1, requires_grad=True)
    b2 = tensor_cls(np.zeros(d_out), requires_grad=True)
    params = (w1, b1, w2, b2)
    scale = 1.0 / (_MLP_BATCH * d_out)

    def step():
        for p in params:
            p.zero_grad()
        hidden = (x @ w1 + b1).relu()
        pred = hidden @ w2 + b2
        loss = ((pred - y) ** 2).sum() * scale
        loss.backward()
        return w1.grad

    return step


def _chain_step(tensor_cls):
    rng = np.random.default_rng(1)
    t0 = tensor_cls(rng.normal(size=_CHAIN_SHAPE), requires_grad=True)

    def step():
        t0.zero_grad()
        t = t0
        for _ in range(_CHAIN_DEPTH):
            t = (t * 0.9 + 0.05).tanh()
            t = t.sigmoid() * t
        (t * t).sum().backward()
        return t0.grad

    return step


# ``<name>`` / ``<name>_closure`` stats pairs come from these builders,
# timed interleaved by :func:`run_pair`.
PAIRED_BENCHES = {
    "bench_mlp_fwd_bwd": _mlp_step,
    "bench_elementwise_chain_fwd_bwd": _chain_step,
}


# ----------------------------------------------------------------------
# Compiled-vs-tape workloads: one tape step timed with the plan compiler
# off (reference walk) and on, interleaved.  Shapes are chosen where the
# compiler's levers actually engage — wide tanh activations (fused runs +
# staged kernel temps), narrow/wide matmul edges (``out=`` GEMM into
# plan-owned buffers) — because bit-identity forbids the compiler from
# changing the math, so all of its win is allocation and dispatch.
# ----------------------------------------------------------------------

_CMLP_DIMS = (8, 512, 8, 512, 8, 512, 8)  # tanh hourglass
_CMLP_BATCH = 384
_CCHAIN_SHAPE = (256, 256)
_CCHAIN_DEPTH = 20


def _compiled_mlp_step():
    rng = np.random.default_rng(5)
    from repro.nn.tensor import Tensor

    ws = [
        Tensor(rng.normal(size=(a, b)) * 0.3, requires_grad=True)
        for a, b in zip(_CMLP_DIMS[:-1], _CMLP_DIMS[1:])
    ]
    bs = [
        Tensor(np.zeros(b), requires_grad=True) for b in _CMLP_DIMS[1:]
    ]
    params = ws + bs
    x = Tensor(rng.normal(size=(_CMLP_BATCH, _CMLP_DIMS[0])))
    scale = 1.0 / _CMLP_BATCH

    def step():
        h = x
        for i, (w, b) in enumerate(zip(ws, bs)):
            h = h @ w + b
            if i < len(ws) - 1:
                h = h.tanh()
        loss = (h * h).sum() * scale
        loss.backward()
        grad = ws[0].grad
        for p in params:
            p.grad = None
        return grad

    return step


def _compiled_chain_step():
    rng = np.random.default_rng(6)
    from repro.nn.tensor import Tensor

    t0 = Tensor(rng.normal(size=_CCHAIN_SHAPE), requires_grad=True)

    def step():
        t = t0
        for _ in range(_CCHAIN_DEPTH):
            t = (t * 0.98).tanh()
        t.sum().backward()
        grad = t0.grad
        t0.grad = None
        return grad

    return step


def _compiled_hybrid_step():
    """Hybrid train step shaped like MolQAE-style training: a patched
    quantum amplitude encoder (small statevectors) feeding a deep
    classical tanh decoder, MSE + SGD.  The quantum forward/adjoint is an
    opaque VJP node on both sides; the compiler's win comes from the
    classical decoder's backward."""
    from repro.nn import SGD, Linear, Sequential, Tanh
    from repro.nn.functional import mse_loss
    from repro.nn.modules import Module
    from repro.nn.tensor import Tensor
    from repro.qnn.circuits import amplitude_encoder_circuit
    from repro.qnn.patched import PatchedQuantumLayer, patch_qubits

    rng = np.random.default_rng(7)
    input_dim, n_patches, n_layers, batch, hidden = 16, 2, 1, 384, 512
    qubits = patch_qubits(input_dim, n_patches)
    latent = n_patches * qubits

    class HybridNet(Module):
        def __init__(self):
            super().__init__()
            self.encoder = PatchedQuantumLayer(
                lambda i: amplitude_encoder_circuit(
                    qubits, input_dim // n_patches, n_layers,
                    zero_fallback=True,
                ),
                n_patches=n_patches,
                rng=rng,
            )
            self.decoder = Sequential(
                Linear(latent, hidden, rng=rng), Tanh(),
                Linear(hidden, 8, rng=rng), Tanh(),
                Linear(8, hidden, rng=rng), Tanh(),
                Linear(hidden, input_dim, rng=rng),
            )

        def forward(self, x):
            return self.decoder(self.encoder(x))

    model = HybridNet()
    optimizer = SGD(model.parameters(), lr=0.001)
    x = Tensor(rng.normal(size=(batch, input_dim)))

    def step():
        optimizer.zero_grad(set_to_none=True)
        loss = mse_loss(model(x), x)
        loss.backward()
        optimizer.step()
        return loss.data

    return step


COMPILED_BENCHES = {
    "bench_compiled_mlp_fwd_bwd": _compiled_mlp_step,
    "bench_compiled_elementwise_chain": _compiled_chain_step,
    "bench_compiled_hybrid_train_step": _compiled_hybrid_step,
}


def run_compiled_pair(builder, rounds: int):
    """Time one workload interleaved with the plan compiler off then on.

    Returns ``(tape_stats, compiled_stats, median_ratio)`` where the
    ratio is tape-time / compiled-time per round.  Same drift-insensitive
    shape as :func:`run_pair`; the global compile toggle is restored on
    exit so the runner never leaks state into later benchmarks.
    """
    from repro.nn import graph

    step = builder()
    was_enabled = graph.tape_compile_enabled()
    try:
        graph.set_tape_compile(True)
        step()  # warmup both sides (also populates the plan cache)
        graph.set_tape_compile(False)
        step()
        tape_times, compiled_times, ratios = [], [], []
        for _ in range(rounds):
            graph.set_tape_compile(False)
            t0 = time.perf_counter()
            step()
            t1 = time.perf_counter()
            graph.set_tape_compile(True)
            step()
            t2 = time.perf_counter()
            tape_times.append(t1 - t0)
            compiled_times.append(t2 - t1)
            ratios.append((t1 - t0) / (t2 - t1))
    finally:
        graph.set_tape_compile(was_enabled)
    return (
        _stats(tape_times),
        _stats(compiled_times),
        statistics.median(ratios),
    )


# ----------------------------------------------------------------------
# Absolute timings (no closure pair): the end-to-end hybrid train step the
# refactor must not tax, and the higher-order capability it added.
# ----------------------------------------------------------------------


def bench_hybrid_train_step(benchmark):
    """Full SQ-AE train step: forward, MSE, tape backward through the
    stacked quantum adjoints, SGD update."""
    from repro.models.scalable import ScalableQuantumAE
    from repro.nn.functional import mse_loss
    from repro.nn.optim import SGD
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(2)
    model = ScalableQuantumAE(
        input_dim=64, n_patches=2, n_layers=1, rng=np.random.default_rng(3)
    )
    optimizer = SGD(model.parameters(), lr=0.01)
    x = Tensor(rng.normal(size=(8, 64)))

    def step():
        optimizer.zero_grad()
        loss = mse_loss(model(x).reconstruction, x)
        loss.backward()
        optimizer.step()
        return loss.data

    benchmark(step)


def bench_hvp_mlp(benchmark):
    """Hessian-vector product through the MLP workload — grad-of-grad on
    the tape; the closure design had no equivalent."""
    from repro.nn import Tensor, hvp

    rng = np.random.default_rng(4)
    d_in, d_hidden, d_out = _MLP_DIMS
    x = Tensor(rng.normal(size=(_MLP_BATCH, d_in)))
    y = Tensor(rng.normal(size=(_MLP_BATCH, d_out)))
    w1 = Tensor(rng.normal(size=(d_in, d_hidden)) * 0.1, requires_grad=True)
    w2 = Tensor(rng.normal(size=(d_hidden, d_out)) * 0.1, requires_grad=True)
    v1 = rng.normal(size=w1.shape)
    v2 = rng.normal(size=w2.shape)
    scale = 1.0 / (_MLP_BATCH * d_out)

    def step():
        pred = (x @ w1).relu() @ w2
        loss = ((pred - y) ** 2).sum() * scale
        h1, h2 = hvp(loss, [w1, w2], [v1, v2])
        return h1.data

    benchmark(step)


def discover(only: str | None):
    module = sys.modules[__name__]
    benches = []
    for name, fn in inspect.getmembers(module, inspect.isfunction):
        if not name.startswith("bench_"):
            continue
        if only and only not in name:
            continue
        params = inspect.signature(fn).parameters
        if list(params) != ["benchmark"]:
            continue
        benches.append((name, fn))
    return sorted(benches)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", help="substring filter on benchmark names")
    parser.add_argument("--rounds", type=int, default=30,
                        help="timed rounds per benchmark (default 30)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_autodiff.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any measured speedup falls below its "
                             "floor in SPEEDUP_FLOORS")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    results: dict[str, dict] = {}
    measured: dict[str, float] = {}
    measured_compiled: dict[str, float] = {}
    ran = 0
    for name, builder in sorted(PAIRED_BENCHES.items()):
        if args.only and args.only not in name:
            continue
        tape_stats, closure_stats, ratio = run_pair(builder, args.rounds)
        results[name] = tape_stats
        results[name + _CLOSURE_SUFFIX] = closure_stats
        measured[name] = round(ratio, 3)
        ran += 1
        print(f"{name:44s} min {tape_stats['min_s'] * 1e3:10.3f} ms  "
              f"vs closure {closure_stats['min_s'] * 1e3:10.3f} ms  "
              f"median ratio {ratio:6.3f}x", file=sys.stderr)

    for name, builder in sorted(COMPILED_BENCHES.items()):
        if args.only and args.only not in name:
            continue
        tape_stats, compiled_stats, ratio = run_compiled_pair(
            builder, args.rounds
        )
        results[name] = compiled_stats
        results[name + "_tape"] = tape_stats
        measured_compiled[name] = round(ratio, 3)
        ran += 1
        print(f"{name:44s} min {compiled_stats['min_s'] * 1e3:10.3f} ms  "
              f"vs tape    {tape_stats['min_s'] * 1e3:10.3f} ms  "
              f"median ratio {ratio:6.3f}x", file=sys.stderr)

    for name, fn in discover(args.only):
        shim = TimerShim(args.rounds)
        fn(shim)
        results[name] = shim.stats
        ran += 1
        print(f"{name:44s} min {shim.stats['min_s'] * 1e3:10.3f} ms  "
              f"mean {shim.stats['mean_s'] * 1e3:10.3f} ms", file=sys.stderr)

    if not ran:
        print(f"no benchmarks match --only {args.only!r}; not writing output",
              file=sys.stderr)
        return 1

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_commit": git_commit(),
        **machine_stamp(),
        "rounds": args.rounds,
        "benchmarks": results,
        "speedup_tape_vs_closure": measured,
        "speedup_compiled_vs_tape": measured_compiled,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        gates = (
            ("tape-vs-closure", SPEEDUP_FLOORS, measured),
            ("compiled-vs-tape", COMPILED_FLOORS, measured_compiled),
        )
        checked = 0
        failures = []
        for label, floors, got_map in gates:
            for name in sorted(set(floors) - set(got_map)):
                print(f"warning: floored benchmark {name} was not measured "
                      f"(filtered by --only?)", file=sys.stderr)
            for name, floor in sorted(floors.items()):
                if name not in got_map:
                    continue
                checked += 1
                if got_map[name] < floor:
                    failures.append((label, name, got_map[name], floor))
        for label, name, got, floor in failures:
            print(f"REGRESSION {name}: {label} speedup {got:.2f}x "
                  f"below floor {floor:.2f}x", file=sys.stderr)
        if failures:
            return 1
        if not checked:
            print("--check measured no floored benchmark; refusing to pass "
                  "an empty gate", file=sys.stderr)
            return 1
        print(f"--check ok: {checked} speedup floor(s) held",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
