"""Data-parallel training benchmarks: workers sweep vs the sequential trainer.

Times full ``Trainer.fit`` runs of the classical AE on a seeded synthetic
workload under three execution strategies — the default single-process
``SequentialTrainStep``, the shared-memory ``ParallelTrainStep`` at each
worker count in :data:`WORKER_SWEEP`, and the in-process
``ShardedTrainStep`` reference that replays the parallel reduction order
without processes.  Two numbers come out of every parallel run:

* *loop seconds* — the sum of per-epoch wall clocks recorded on
  ``EpochRecord.seconds``, i.e. the steady-state training time the worker
  pool is supposed to shrink; and
* *setup seconds* — total ``fit`` wall clock minus the loop, dominated by
  worker spawn (a fresh interpreter importing the library, ~2 s per
  worker on a cold cache).  Reported separately so a short benchmark run
  does not bill one-time spawn cost against the per-epoch speedup.

The configuration deliberately enables gradient clipping
(``max_grad_norm=1.0``): the clip norm is the one place reduction
arithmetic ever leaked into trained parameters (gradient *memory layout*
changed the summation order), so the equality anchors exercise it.

``run_train.py`` drives these workloads with a minimal shim, records
``BENCH_train.json``, and enforces the correctness anchors (bit-for-bit
``workers=1`` vs sequential, ``workers=N`` vs the sharded reference) plus
— only on multi-core machines — the multi-worker speedup floor.

Written against the pytest-benchmark fixture API for ``pytest
benchmarks/ --benchmark-only``; training benchmarks run once (rounds=1)
like the other end-to-end reproductions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data import ArrayDataset
from repro.models import build_model
from repro.training import (
    ShardedTrainStep,
    TrainConfig,
    Trainer,
)

TRAIN_N = 192
TEST_N = 48
INPUT_DIM = 32
RANK = 6               # low-rank structure so the AE has something to learn
LATENT_DIM = 8
EPOCHS = 3
BATCH_SIZE = 16
DATA_SEED = 29
MODEL_SEED = 7
LOADER_SEED = 5
WORKER_SWEEP = (1, 2)


def _dataset(n: int, seed: int) -> ArrayDataset:
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(RANK, INPUT_DIM))
    return ArrayDataset(gen.normal(size=(n, RANK)) @ base)


def training_data() -> ArrayDataset:
    return _dataset(TRAIN_N, DATA_SEED)


def test_data() -> ArrayDataset:
    return _dataset(TEST_N, DATA_SEED + 1)


def fresh_model():
    return build_model("ae", INPUT_DIM, 4, 2, LATENT_DIM, seed=MODEL_SEED)


def train_once(workers=None, strategy=None):
    """One full deterministic ``fit``; returns ``(history, model, wall_s)``.

    Identical seeds everywhere, so two calls with the same arguments
    produce bitwise-identical histories and parameters — which is what
    lets the runner time rounds and reuse one of them as the equality
    anchor.
    """
    config = TrainConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        seed=LOADER_SEED,
        max_grad_norm=1.0,
        workers=workers,
    )
    model = fresh_model()
    trainer = Trainer(model, config, strategy=strategy)
    start = time.perf_counter()
    history = trainer.fit(training_data(), test_data=test_data())
    wall_s = time.perf_counter() - start
    return history, model, wall_s


def loop_seconds(history) -> float:
    """Steady-state training time: the sum of per-epoch wall clocks."""
    return sum(record.seconds for record in history.epochs)


def histories_equal(a, b) -> bool:
    """Plain ``==`` on every recorded loss — bit-for-bit, no tolerance."""
    return (
        a.train_losses == b.train_losses
        and a.test_losses == b.test_losses
        and a.batch_losses == b.batch_losses
    )


def parameters_equal(model_a, model_b) -> bool:
    """Plain ``==`` on every parameter array — bit-for-bit, no tolerance."""
    pairs = list(zip(model_a.named_parameters(), model_b.named_parameters()))
    return all(
        name_a == name_b and bool((a.data == b.data).all())
        for (name_a, a), (name_b, b) in pairs
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points (rounds=1 end-to-end runs)
# ----------------------------------------------------------------------


def bench_train_sequential(benchmark):
    from conftest import run_once

    history, _, _ = run_once(benchmark, lambda: train_once())
    assert len(history.epochs) == EPOCHS


def bench_train_workers_1(benchmark):
    from conftest import run_once

    history, _, _ = run_once(benchmark, lambda: train_once(workers=1))
    assert len(history.epochs) == EPOCHS


def bench_train_workers_2(benchmark):
    from conftest import run_once

    history, _, _ = run_once(benchmark, lambda: train_once(workers=2))
    assert len(history.epochs) == EPOCHS


def bench_train_sharded_reference_2(benchmark):
    from conftest import run_once

    history, _, _ = run_once(
        benchmark, lambda: train_once(strategy=ShardedTrainStep(2))
    )
    assert len(history.epochs) == EPOCHS
