"""Molecule-pipeline benchmarks: batched vs per-molecule reference scoring.

Times the Table II evaluation path — decode -> sanitize -> QED/logP/SA ->
uniqueness — end to end on a representative noisy ligand stack, plus the
fingerprint/novelty and descriptor-matrix sub-stages.  Every ``bench_*``
function has a ``*_reference`` twin running the kept per-molecule scalar
path on the same workload; the two produce bit-for-bit identical values
(enforced by ``tests/chem/test_batch_equivalence.py``), so the recorded
ratio is pure pipeline speedup.

Written against the pytest-benchmark fixture API; ``run_pipeline.py``
drives the same functions with a minimal shim and records molecules/sec
into ``BENCH_pipeline.json``.

The workload is 256 PDBbind-like 32x32 ligand matrices perturbed with
seeded Gaussian noise — the shape of real model samples: a mix of strictly
valid molecules, repairable ones, and wrecks the sanitizer must shed.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.chem.batch import MoleculeBatch, descriptor_matrix_batch, sanitize_batch
from repro.chem.fingerprints import (
    morgan_fingerprints,
    nearest_neighbor_similarity_reference,
    novelty,
)
from repro.chem.metrics import score_matrices, score_matrices_reference
from repro.chem.sa import default_fragment_table
from repro.data import load_pdbbind_ligands
from repro.evaluation.distribution import descriptor_matrix_reference

PIPELINE_N = 256
NOVELTY_N = 128
NOISE_SEED = 617
NOISE_SIGMA = 0.35

# Molecules processed per call, used by run_pipeline.py to report
# molecules/sec for each stage.
MOLECULES_PER_CALL = {
    "bench_score_pipeline_256": PIPELINE_N,
    "bench_score_pipeline_256_reference": PIPELINE_N,
    "bench_fingerprint_novelty": NOVELTY_N,
    "bench_fingerprint_novelty_reference": NOVELTY_N,
    "bench_descriptor_matrix": PIPELINE_N,
    "bench_descriptor_matrix_reference": PIPELINE_N,
}


@lru_cache(maxsize=1)
def _noisy_stack() -> np.ndarray:
    """256 seeded ligand matrices + Gaussian noise (model-sample-shaped)."""
    raw = load_pdbbind_ligands(PIPELINE_N, seed=2019).raw.astype(np.float64)
    rng = np.random.default_rng(NOISE_SEED)
    return raw + rng.normal(0.0, NOISE_SIGMA, size=raw.shape)


@lru_cache(maxsize=1)
def _scored_molecules() -> tuple:
    """The sanitized, non-empty molecules the noisy stack decodes to."""
    batch = MoleculeBatch.from_matrices(_noisy_stack())
    return tuple(m for m in sanitize_batch(batch) if m.num_atoms)


@lru_cache(maxsize=1)
def _novelty_sets() -> tuple[list, list]:
    """(generated, reference) molecule lists for the novelty sub-bench."""
    generated = list(_scored_molecules())[:NOVELTY_N]
    reference = MoleculeBatch.from_matrices(
        load_pdbbind_ligands(NOVELTY_N, seed=77).raw.astype(np.float64)
    ).molecules
    return generated, reference


# ----------------------------------------------------------------------
# decode -> sanitize -> score, end to end
# ----------------------------------------------------------------------
def bench_score_pipeline_256(benchmark):
    stack = _noisy_stack()
    table = default_fragment_table()
    benchmark(lambda: score_matrices(stack, table=table))


def bench_score_pipeline_256_reference(benchmark):
    stack = _noisy_stack()
    table = default_fragment_table()
    benchmark(lambda: score_matrices_reference(stack, table=table))


# ----------------------------------------------------------------------
# bulk fingerprints + generated x reference novelty
# ----------------------------------------------------------------------
def bench_fingerprint_novelty(benchmark):
    generated, reference = _novelty_sets()
    reference_fps = morgan_fingerprints(reference)
    benchmark(
        lambda: novelty(generated, reference_fingerprints=reference_fps)
    )


def bench_fingerprint_novelty_reference(benchmark):
    generated, reference = _novelty_sets()

    def run():
        similarity = nearest_neighbor_similarity_reference(
            generated, reference
        )
        return float((similarity < 1.0).mean())

    benchmark(run)


# ----------------------------------------------------------------------
# descriptor matrix (distribution metrics input)
# ----------------------------------------------------------------------
def bench_descriptor_matrix(benchmark):
    molecules = list(_scored_molecules())
    benchmark(lambda: descriptor_matrix_batch(molecules))


def bench_descriptor_matrix_reference(benchmark):
    molecules = list(_scored_molecules())
    benchmark(lambda: descriptor_matrix_reference(molecules))
