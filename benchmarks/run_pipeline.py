"""Pipeline-benchmark runner: time bench_pipeline.py, write BENCH_pipeline.json.

Same discipline as ``run_kernels.py``: every ``bench_*`` function in
:mod:`bench_pipeline` runs under a minimal pytest-benchmark shim (one
warmup + min-of-rounds), speedups are derived for every ``<name>`` /
``<name>_reference`` pair, and molecules/sec throughput is recorded for
each stage.  The payload lands in ``BENCH_pipeline.json`` at the repo root,
stamped with the git commit it was generated at.

``--check`` turns the runner into a perf-regression gate: it fails (exit 1)
when a measured batched-vs-reference speedup drops below its floor in
:data:`SPEEDUP_FLOORS`, or when the batched pipeline's absolute throughput
falls below :data:`THROUGHPUT_FLOORS` (set far below any plausible
machine's numbers — they catch the batched path silently degrading to the
per-molecule loop, not slow hardware).

Usage::

    PYTHONPATH=src python benchmarks/run_pipeline.py [--only SUBSTR]
        [--rounds N] [--output PATH] [--check]
"""

from __future__ import annotations

import argparse
import inspect
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_machine import machine_stamp  # noqa: E402

_REFERENCE_SUFFIX = "_reference"

# Floors asserted by --check: the measured batched/reference speedup must
# stay at or above these.  Values sit well below the ratios recorded in
# BENCH_pipeline.json so machine noise does not trip the gate, while still
# catching a real regression — the batched path falling back to per-molecule
# scoring shows up as ~1.0x, far below every floor.
SPEEDUP_FLOORS = {
    "bench_score_pipeline_256": 3.0,
    "bench_fingerprint_novelty": 4.0,
    "bench_descriptor_matrix": 4.0,
}

# Absolute molecules/sec floors for the batched stages.  Deliberately an
# order of magnitude below single-core measurements: they gate on the
# pipeline collapsing (e.g. a cache stops working and every scorer
# recomputes its graph contexts), not on runner hardware.
THROUGHPUT_FLOORS = {
    "bench_score_pipeline_256": 60.0,
    "bench_descriptor_matrix": 100.0,
}


def git_commit() -> str | None:
    """The commit the benchmarked tree is based on, or None outside git.

    Suffixed with ``-dirty`` when the working tree has uncommitted changes,
    so BENCH_pipeline.json never attributes numbers measured on modified
    code to a clean commit.
    """
    def _git(*args):
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    head = _git("rev-parse", "HEAD")
    if head is None:
        return None
    status = _git("status", "--porcelain")
    dirty = "-dirty" if status is None or status.strip() else ""
    return head.strip() + dirty


class TimerShim:
    """Duck-types the pytest-benchmark fixture: ``benchmark(fn)``.  Times
    min/mean over ``rounds`` calls after one warmup (the warmup also absorbs
    corpus construction and fragment-table caching, so steady-state pipeline
    cost is what gets recorded)."""

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.stats: dict[str, float] | None = None

    def __call__(self, fn):
        result = fn()  # warmup
        times = []
        for _ in range(self.rounds):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": self.rounds,
        }
        return result


def discover(only: str | None):
    import bench_pipeline

    benches = []
    for name, fn in inspect.getmembers(bench_pipeline, inspect.isfunction):
        if not name.startswith("bench_"):
            continue
        if only and only not in name:
            continue
        params = inspect.signature(fn).parameters
        if list(params) != ["benchmark"]:
            continue
        benches.append((name, fn))
    return sorted(benches)


def speedups(results: dict) -> dict:
    """reference-time / batched-time for every ``<name>``/``<name>_reference``
    pair."""
    out = {}
    for name, stats in results.items():
        baseline = results.get(name + _REFERENCE_SUFFIX)
        if baseline:
            out[name] = round(baseline["min_s"] / stats["min_s"], 3)
    return out


def throughputs(results: dict) -> dict:
    """Molecules/sec per stage, from bench_pipeline's per-call counts."""
    import bench_pipeline

    out = {}
    for name, stats in results.items():
        count = bench_pipeline.MOLECULES_PER_CALL.get(name)
        if count and stats["min_s"] > 0:
            out[name] = round(count / stats["min_s"], 1)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", help="substring filter on benchmark names")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per benchmark (default 5)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_pipeline.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any measured speedup or throughput "
                             "falls below its floor")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    benches = discover(args.only)
    if not benches:
        print(f"no benchmarks match --only {args.only!r}; not writing output",
              file=sys.stderr)
        return 1

    results: dict[str, dict] = {}
    for name, fn in benches:
        shim = TimerShim(args.rounds)
        fn(shim)
        results[name] = shim.stats
        print(f"{name:44s} min {shim.stats['min_s'] * 1e3:10.3f} ms  "
              f"mean {shim.stats['mean_s'] * 1e3:10.3f} ms", file=sys.stderr)

    measured = speedups(results)
    measured_throughput = throughputs(results)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_commit": git_commit(),
        **machine_stamp(),
        "rounds": args.rounds,
        "benchmarks": results,
        "speedup_vs_reference": measured,
        "molecules_per_sec": measured_throughput,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        failures = []
        checked = []
        for name, floor in sorted(SPEEDUP_FLOORS.items()):
            if name not in measured:
                print(f"warning: floored benchmark {name} was not measured "
                      f"(filtered by --only?)", file=sys.stderr)
                continue
            checked.append(name)
            if measured[name] < floor:
                failures.append(
                    f"REGRESSION {name}: speedup {measured[name]:.2f}x "
                    f"below floor {floor:.1f}x"
                )
        for name, floor in sorted(THROUGHPUT_FLOORS.items()):
            if name not in measured_throughput:
                print(f"warning: throughput-floored benchmark {name} was "
                      f"not measured (filtered by --only?)", file=sys.stderr)
                continue
            checked.append(name + ":throughput")
            if measured_throughput[name] < floor:
                failures.append(
                    f"REGRESSION {name}: {measured_throughput[name]:.1f} "
                    f"molecules/sec below floor {floor:.1f}"
                )
        for line in failures:
            print(line, file=sys.stderr)
        if failures:
            return 1
        if not checked:
            print("--check measured no floored benchmark; refusing to pass "
                  "an empty gate", file=sys.stderr)
            return 1
        print(f"--check ok: {len(checked)} floor(s) held", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
