"""Frozen pre-refactor closure-based Tensor, kept as a benchmark baseline.

Before the tape refactor, :mod:`repro.nn.tensor` gave every op its own
backward closure: each result tensor captured its parents plus a ``backward``
callable, and ``Tensor.backward`` walked those closures in topological
order.  The refactor replaced that with a recorded tape of registered
primitives (:mod:`repro.nn.autodiff`), and ``benchmarks/run_autodiff.py``
gates the new design against the old one — which requires the old one to
still exist somewhere runnable.

This module is that somewhere: a faithful, trimmed vendoring of the
closure-era ``Tensor`` restricted to the ops the autodiff benchmarks
exercise (arithmetic, matmul, the elementwise activations, and ``sum`` /
``mean``).  The closure bodies, broadcasting plumbing, accumulation
semantics, and the ``backward`` walk are copied verbatim from the
pre-refactor module so the measured baseline is the real historical cost,
not a strawman.  It intentionally tracks :mod:`repro.nn.precision` for
gradient dtype policy — identical memory traffic on both sides of the
comparison.

Do not grow this file: it is a measurement artifact, not a library.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.precision import default_precision, grad_dtype

__all__ = ["ClosureTensor"]


def _as_array(value) -> np.ndarray:
    if isinstance(value, (np.ndarray, np.generic)) and value.dtype in (
        np.dtype(np.float32),
        np.dtype(np.float64),
    ):
        return np.asarray(value)
    return np.asarray(value, dtype=default_precision().real)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` reversing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class ClosureTensor:
    """The pre-refactor closure-per-op Tensor (benchmark ops only)."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple["ClosureTensor", ...] = ()

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=grad_dtype(self.data.dtype), copy=True)
        else:
            self.grad = (self.grad + grad).astype(self.grad.dtype, copy=False)

    def backward(self, grad=None, retain_graph: bool = False) -> None:
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order: list[ClosureTensor] = []
        visited: set[int] = set()
        stack: list[tuple[ClosureTensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in order:
            if node._backward is not None:
                node.grad = None

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
        if not retain_graph:
            for node in order:
                node._backward = None
                node._prev = ()

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["ClosureTensor"],
        backward: Callable[["ClosureTensor"], None],
    ) -> "ClosureTensor":
        out = ClosureTensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(p for p in parents if p.requires_grad)

            def _run() -> None:
                backward(out)

            out._backward = _run
        return out

    def _coerce(self, other) -> "ClosureTensor":
        if isinstance(other, ClosureTensor):
            return other
        arr = np.asarray(other)
        if arr.ndim == 0:
            return ClosureTensor(arr.astype(self.data.dtype))
        return ClosureTensor(arr)

    def __add__(self, other) -> "ClosureTensor":
        other = self._coerce(other)

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        return ClosureTensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "ClosureTensor":
        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        return ClosureTensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "ClosureTensor":
        other = self._coerce(other)

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-out.grad, other.shape))

        return ClosureTensor._make(self.data - other.data, (self, other), backward)

    def __mul__(self, other) -> "ClosureTensor":
        other = self._coerce(other)

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return ClosureTensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __pow__(self, exponent: float) -> "ClosureTensor":
        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return ClosureTensor._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "ClosureTensor":
        other = self._coerce(other)

        def backward(out: ClosureTensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                self._accumulate(ga.reshape(a.shape))
            if other.requires_grad:
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
                other._accumulate(gb.reshape(b.shape))

        return ClosureTensor._make(self.data @ other.data, (self, other), backward)

    def exp(self) -> "ClosureTensor":
        value = np.exp(self.data)

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value)

        return ClosureTensor._make(value, (self,), backward)

    def relu(self) -> "ClosureTensor":
        mask = self.data > 0

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return ClosureTensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "ClosureTensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value * (1.0 - value))

        return ClosureTensor._make(value, (self,), backward)

    def tanh(self) -> "ClosureTensor":
        value = np.tanh(self.data)

        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - value**2))

        return ClosureTensor._make(value, (self,), backward)

    def sum(self) -> "ClosureTensor":
        def backward(out: ClosureTensor) -> None:
            if self.requires_grad:
                self._accumulate(np.broadcast_to(out.grad, self.data.shape))

        return ClosureTensor._make(self.data.sum(), (self,), backward)
