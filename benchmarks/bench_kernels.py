"""Micro-benchmarks for the computational kernels under every experiment.

These are proper multi-round pytest benchmarks (unlike the one-shot
experiment reproductions): statevector gate application, full circuit
execution, adjoint backward, parameter-shift (for the cost comparison the
adjoint method wins), patched-layer forward, stacked-vs-sequential patched
forward+backward training passes, and molecule scoring.
"""

import numpy as np

from repro.chem import random_molecules, score_molecules
from repro.models import ScalableQuantumAE
from repro.nn import Tensor, functional as F
from repro.qnn import PatchedQuantumLayer, amplitude_encoder_circuit, patch_qubits
from repro.quantum import (
    Circuit,
    backward,
    compile_circuit,
    execute,
    gates,
    naive_backward,
    naive_execute,
    parameter_shift_gradients,
    apply_gate,
    zero_state,
)


def bench_apply_single_qubit_gate_10q(benchmark):
    """One RY on a batch of 32 ten-qubit states (the SQ encoder regime)."""
    state = zero_state(10, batch=32)
    gate = gates.ry(0.3)
    result = benchmark(lambda: apply_gate(state, gate, (4,)))
    assert result.shape == (32, 1024)


def bench_apply_cnot_10q(benchmark):
    state = zero_state(10, batch=32)
    result = benchmark(lambda: apply_gate(state, gates.CNOT, (3, 7)))
    assert result.shape == (32, 1024)


def _sel_circuit(n_wires=8, layers=5):
    return (
        Circuit(n_wires)
        .amplitude_embedding(2**n_wires, zero_fallback=True)
        .strongly_entangling_layers(layers)
        .measure_expval()
    )


def bench_circuit_forward_8q_5layers(benchmark):
    """Forward pass of one SQ encoder patch (8 qubits, 5 SEL layers)."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    out, __ = benchmark(lambda: execute(circuit, inputs, weights, want_cache=False))
    assert out.shape == (32, 8)


def bench_circuit_forward_8q_5layers_naive(benchmark):
    """The same forward pass on the op-by-op reference interpreter.

    This is the pre-compilation baseline the compiled engine's speedup is
    measured against (see ``run_kernels.py``, which records the ratio).
    """
    circuit = _sel_circuit()
    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    out, __ = benchmark(
        lambda: naive_execute(circuit, inputs, weights, want_cache=False)
    )
    assert out.shape == (32, 8)


def bench_adjoint_backward_8q_5layers(benchmark):
    """Adjoint gradient of one SQ encoder patch (vs. parameter-shift below)."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(1)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    outputs, cache = execute(circuit, inputs, weights)
    grad_out = rng.normal(size=outputs.shape)
    grad_in, grad_w = benchmark(lambda: backward(cache, grad_out))
    assert grad_w.shape == (circuit.n_weights,)


def bench_adjoint_backward_8q_5layers_naive(benchmark):
    """The same adjoint gradient on the op-by-op reference interpreter."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(1)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    outputs, cache = naive_execute(circuit, inputs, weights)
    grad_out = rng.normal(size=outputs.shape)
    grad_in, grad_w = benchmark(lambda: naive_backward(cache, grad_out))
    assert grad_w.shape == (circuit.n_weights,)


def bench_circuit_forward_8q_5layers_c64(benchmark):
    """The compiled forward pass at float32/complex64 — the precision
    policy's half-bandwidth mode (ratio vs. the complex128 bench above is
    recorded as a ``_c64`` speedup by ``run_kernels.py``)."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    out, __ = benchmark(
        lambda: execute(circuit, inputs, weights, want_cache=False,
                        dtype="float32")
    )
    assert out.shape == (32, 8)
    assert out.dtype == np.float32


def bench_adjoint_backward_8q_5layers_c64(benchmark):
    """The compiled adjoint backward at float32/complex64."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(1)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    outputs, cache = execute(circuit, inputs, weights, dtype="float32")
    grad_out = rng.normal(size=outputs.shape)
    grad_in, grad_w = benchmark(lambda: backward(cache, grad_out))
    assert grad_w.shape == (circuit.n_weights,)


def bench_compiled_adjoint_unified(benchmark):
    """Unified adjoint of a single circuit at n=8, 3 SEL layers (Rot+ring).

    The per-instance backward now runs on the stacked block substrate as a
    degenerate p=1 stack: checkpointed cotangent-only walk, adjacent-wire
    4x4 kron pair blocks, and one transition-matrix contraction per fused
    block instead of one generator insertion per parameter.  Its speedup
    over the per-parameter generator baseline below is gated by
    ``run_kernels.py --check``.
    """
    circuit = _sel_circuit(8, 3)
    rng = np.random.default_rng(6)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    outputs, cache = execute(circuit, inputs, weights)
    grad_out = rng.normal(size=outputs.shape)
    grad_in, grad_w = benchmark(lambda: backward(cache, grad_out))
    assert grad_w.shape == (circuit.n_weights,)


def bench_compiled_adjoint_unified_naive(benchmark):
    """The same adjoint on the per-parameter generator-insertion reference
    (``naive_backward``): one full-state generator apply + inner product
    per parameter, the pre-unification gradient strategy."""
    circuit = _sel_circuit(8, 3)
    rng = np.random.default_rng(6)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    outputs, cache = naive_execute(circuit, inputs, weights)
    grad_out = rng.normal(size=outputs.shape)
    grad_in, grad_w = benchmark(lambda: naive_backward(cache, grad_out))
    assert grad_w.shape == (circuit.n_weights,)


def bench_compile_plan_8q_5layers(benchmark):
    """Cold-compile cost of the SQ encoder patch plan (paid once per shape)."""
    circuit = _sel_circuit()
    plan = benchmark(lambda: compile_circuit(circuit))
    assert plan.n_instructions < len(circuit.ops)


def bench_parameter_shift_4q_2layers(benchmark):
    """Parameter-shift on a small circuit — 2 executions per parameter.

    Kept small: at the SQ encoder's size this method would need 240
    executions per batch, which is exactly why training uses the adjoint.
    """
    circuit = (
        Circuit(4)
        .amplitude_embedding(16)
        .strongly_entangling_layers(2)
        .measure_expval()
    )
    rng = np.random.default_rng(2)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(8, 16))) + 0.01
    grad_out = rng.normal(size=(8, 4))
    grads = benchmark(
        lambda: parameter_shift_gradients(circuit, inputs, weights, grad_out)
    )
    assert grads.shape == (circuit.n_weights,)


def bench_patched_encoder_forward_1024(benchmark):
    """Full patched encoder (p=4) on a 1024-feature batch."""
    rng = np.random.default_rng(3)
    layer = PatchedQuantumLayer(
        lambda i: amplitude_encoder_circuit(8, 256, 5, zero_fallback=True),
        n_patches=4,
        rng=rng,
    )
    x = Tensor(np.abs(rng.normal(size=(32, 1024))) + 0.01)
    out = benchmark(lambda: layer(x))
    assert out.shape == (32, 32)


def _patched_encoder(n_patches, stacked, batch=32, dtype=None, backend=None):
    """A paper-scale patched encoder (1024 features, 5 SEL layers) + batch."""
    rng = np.random.default_rng(5)
    qubits = patch_qubits(1024, n_patches)
    layer = PatchedQuantumLayer(
        lambda i: amplitude_encoder_circuit(
            qubits, 1024 // n_patches, 5, zero_fallback=True
        ),
        n_patches=n_patches,
        rng=rng,
        stacked=stacked,
        dtype=dtype,
        backend=backend,
    )
    x = Tensor(
        np.abs(rng.normal(size=(batch, 1024))) + 0.01,
        requires_grad=True,
        dtype=None if dtype is None else layer.precision.real,
    )
    return layer, x


def _patched_step(layer, x):
    def step():
        layer.zero_grad()
        x.zero_grad()
        out = layer(x)
        out.sum().backward()
        return out

    return step


def bench_patched_fwd_bwd_p8(benchmark):
    """Stacked patched-encoder training pass (p=8): forward + backward in
    one engine invocation over a (8*32, 2**7) stacked state."""
    layer, x = _patched_encoder(8, stacked=True)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 56)


def bench_patched_fwd_bwd_p8_naive(benchmark):
    """The same p=8 forward + backward on the sequential per-patch loop —
    the pre-stacking baseline the stacked speedup is measured against."""
    layer, x = _patched_encoder(8, stacked=False)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 56)


def bench_patched_fwd_bwd_p16(benchmark):
    """Stacked patched-encoder training pass at the paper's largest patch
    count (p=16): one (16*32, 2**6) pass instead of 16 engine calls."""
    layer, x = _patched_encoder(16, stacked=True)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 96)


def bench_patched_fwd_bwd_p16_naive(benchmark):
    """The same p=16 forward + backward on the sequential per-patch loop."""
    layer, x = _patched_encoder(16, stacked=False)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 96)


def bench_patched_fwd_bwd_p8_b8(benchmark):
    """Stacked p=8 training pass at minibatch 8 — the small-batch regime,
    where the per-patch loop is dominated by per-invocation overhead and
    stacking pays off the most."""
    layer, x = _patched_encoder(8, stacked=True, batch=8)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (8, 56)


def bench_patched_fwd_bwd_p8_b8_naive(benchmark):
    """The same p=8 minibatch-8 pass on the sequential per-patch loop."""
    layer, x = _patched_encoder(8, stacked=False, batch=8)
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (8, 56)


def bench_patched_fwd_bwd_p8_c64(benchmark):
    """Stacked p=8/batch=32 training pass at float32/complex64 — the
    bandwidth-bound large-batch regime where the per-patch statevector
    arrays saturate memory bandwidth at complex128; halving the bytes per
    kernel is the precision policy's headline win (ratio vs. the complex128
    ``bench_patched_fwd_bwd_p8`` is recorded as a ``_c64`` speedup)."""
    layer, x = _patched_encoder(8, stacked=True, dtype="float32")
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 56)
    assert out.data.dtype == np.float32


def bench_patched_fwd_bwd_p16_c64(benchmark):
    """Stacked p=16/batch=32 training pass at float32/complex64."""
    layer, x = _patched_encoder(16, stacked=True, dtype="float32")
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 96)
    assert out.data.dtype == np.float32


def bench_patched_fwd_bwd_p8_threaded(benchmark):
    """Stacked p=8/batch=32 training pass on the ThreadedBackend — the
    row-sharding kernel set (ratio vs. the NumpyBackend
    ``bench_patched_fwd_bwd_p8`` is recorded as a ``_threaded`` speedup by
    ``run_kernels.py``)."""
    layer, x = _patched_encoder(8, stacked=True, backend="threaded")
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 56)


def bench_patched_fwd_bwd_p16_threaded(benchmark):
    """Stacked p=16/batch=32 training pass on the ThreadedBackend: the
    (16*32, 2**6) row dimension shards across the worker pool per kernel.
    This is the backend's headline gate — ``run_kernels.py --check``
    requires it to beat the NumpyBackend twin wherever the pool resolves
    more than one worker."""
    layer, x = _patched_encoder(16, stacked=True, backend="threaded")
    out = benchmark(_patched_step(layer, x))
    assert out.shape == (32, 96)


def bench_circuit_forward_8q_5layers_threaded(benchmark):
    """The compiled (p = 1) forward pass on the ThreadedBackend — recorded
    for the backend-overhead trajectory; not floored (a single-instance
    batch-32 pass leaves little row parallelism to win from)."""
    circuit = _sel_circuit()
    rng = np.random.default_rng(0)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(32, 256))) + 0.01
    out, __ = benchmark(
        lambda: execute(circuit, inputs, weights, want_cache=False,
                        backend="threaded")
    )
    assert out.shape == (32, 8)


def bench_sq_ae_training_step(benchmark):
    """One full SQ-AE optimizer step at paper scale (p=4, L=5, batch 32)."""
    from repro.nn import heterogeneous_adam

    rng = np.random.default_rng(4)
    model = ScalableQuantumAE(input_dim=1024, n_patches=4, n_layers=5, rng=rng)
    optimizer = heterogeneous_adam(model, quantum_lr=0.03, classical_lr=0.01)
    batch = Tensor(np.abs(rng.normal(size=(32, 1024))) + 0.01)

    def step():
        optimizer.zero_grad()
        out = model(batch)
        loss = F.mse_loss(out.reconstruction, batch)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    assert loss > 0


def bench_molecule_scoring(benchmark):
    """QED + logP + SA scoring of a 50-molecule set (Table II's hot loop)."""
    from repro.chem.sa import default_fragment_table

    molecules = random_molecules(50, seed=0)
    table = default_fragment_table()
    scores = benchmark(lambda: score_molecules(molecules, table=table))
    assert scores.n_scored == 50
