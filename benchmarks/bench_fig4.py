"""Benchmark + reproduction of Fig. 4 (baseline quantum vs classical VAE).

Reproduces all four panels: loss curves on original-scale and L1-normalized
Digits/QM9, digit reconstruction/sampling renders, and the molecule
reconstruction comparison.
"""

from conftest import run_once

from repro.experiments.fig4 import Fig4Config, run_fig4


def bench_fig4(benchmark, show, scale):
    config = Fig4Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_fig4(config))
    show("Fig. 4(a)/(b): loss curves", result.format_table())
    show("Fig. 4(c): digits", result.digit_panel)
    show("Fig. 4(d): molecule", result.molecule_panel)

    # Paper claim (b): on normalized data the BQ-VAE learns faster / better
    # than the classical VAE on both datasets.
    assert result.quantum_wins_normalized("QM9")
    assert result.quantum_wins_normalized("Digits")

    # Paper claim (a): no quantum advantage at original scale — the
    # classical model ends below the quantum plateau.
    assert result.classical_wins_original("QM9")
    assert result.classical_wins_original("Digits")

    # The BQ-VAE's normalized loss must be decisively small (Fig. 4b's
    # 1e-3-scale axis).
    assert result.normalized_curves["BQ-VAE-QM9"][-1] < 0.01
