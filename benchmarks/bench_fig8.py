"""Benchmark + reproduction of Fig. 8 (SQ autoencoders at scale + CIFAR).

Panel (a): train loss vs latent dimension for VAE / SQ-VAE / SQ-AE on
PDBbind; panel (b): loss curves on grayscale CIFAR-10; panel (c): ASCII
reconstruction panel.
"""

from conftest import run_once

from repro.experiments.fig8 import Fig8Config, run_fig8


def bench_fig8(benchmark, show, scale):
    config = Fig8Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_fig8(config))
    show("Fig. 8(a)/(b): losses", result.format_table())
    show("Fig. 8(c): CIFAR reconstructions", result.cifar_panel)

    # Vanilla SQ-AE reconstructs at least as well as SQ-VAE on most LSDs
    # (the variational latent noise costs reconstruction accuracy).
    assert result.sq_ae_beats_sq_vae()

    # All four CIFAR models actually learn: final loss below initial.
    for name, curve in result.cifar_curves.items():
        assert curve[-1] < curve[0], name

    # Quantum/classical parity claim on CIFAR: the SQ-AE's final loss is
    # within a small factor of the classical AE's (paper: "reconstruction
    # results on par with classical counterparts").
    assert result.cifar_curves["SQ-AE"][-1] < result.cifar_curves["CAE"][-1] * 3
