"""Shared machine stamp for every ``BENCH_*.json`` payload.

Benchmark floors are only comparable between runs on similar hardware, so
each runner records the CPU count and the BLAS implementation numpy was
built against next to its timings.  Kept defensive: ``np.show_config``
grew its machine-readable ``mode="dicts"`` form in numpy 1.25, and the
layout of the returned dict is not a stable API — any shape surprise
degrades to ``None`` rather than failing a benchmark run.
"""

from __future__ import annotations

import os
import platform

import numpy as np


def blas_vendor() -> str | None:
    """The BLAS library name numpy reports, or None when undetectable."""
    try:
        cfg = np.show_config(mode="dicts")
    except TypeError:  # numpy < 1.25: show_config() prints, no dict mode
        return None
    except Exception:
        return None
    if not isinstance(cfg, dict):
        return None
    deps = cfg.get("Build Dependencies")
    if not isinstance(deps, dict):
        return None
    blas = deps.get("blas")
    if not isinstance(blas, dict):
        return None
    name = blas.get("name")
    return name if isinstance(name, str) and name else None


def machine_stamp() -> dict:
    """Keys merged into every benchmark payload."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "blas": blas_vendor(),
    }
