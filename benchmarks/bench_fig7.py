"""Benchmark + reproduction of Fig. 7 (heterogeneous learning-rate grid).

Trains one SQ-AE per (quantum lr, classical lr) pair over the paper's
5 x 5 grid {0.001, 0.003, 0.01, 0.03, 0.1}^2 and reports final train loss.
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig7 import Fig7Config, run_fig7


def bench_fig7(benchmark, show, scale):
    config = Fig7Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_fig7(config))
    show("Fig. 7: learning-rate grid", result.format_table())

    grid = result.loss_grid()
    assert grid.shape == (len(config.classical_lrs), len(config.quantum_lrs))
    assert np.isfinite(grid).all()

    # Shape claim from the paper's heat map: the classical learning rate
    # dominates — the tiny-classical-lr row is the worst region of the grid.
    row_means = grid.mean(axis=1)  # rows ordered by ascending classical lr
    assert row_means[0] == row_means.max()

    # Heterogeneous rates are meaningful: the best cell is at least as good
    # as every homogeneous (q == c) diagonal cell.
    best_q, best_c = result.best_combination()
    best_loss = result.losses[(best_q, best_c)]
    diagonal = [result.losses[(lr, lr)] for lr in config.quantum_lrs
                if (lr, lr) in result.losses]
    assert best_loss <= min(diagonal) + 1e-12
