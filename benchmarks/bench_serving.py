"""Serving benchmarks: micro-batched throughput and latency vs flush window.

Stands up a real :class:`repro.serving.GenerationService` over a saved
ScalableQuantumVAE checkpoint (the paper's architecture — its stacked
``(p * batch, 2**n)`` passes are what micro-batching exists to feed) and
drives it with concurrent client threads issuing sample requests, exactly
as the TCP front end would.  For each flush window the scenario records:

* molecules/sec end-to-end throughput (wall clock over the whole swarm),
* p50 / p99 per-request latency (the price a request pays for co-riders),
* the batcher's mean batch size (how much fusion the window actually buys).

``run_sequential`` is the baseline: one client, zero flush window — every
request pays a full engine pass of its own.  The ratio of swarm throughput
to sequential throughput is the number the serving layer exists to move.

``run_serving.py`` sweeps the windows, stamps the payload via
``bench_machine.py``, and enforces the floors in ``--check`` mode.
"""

from __future__ import annotations

import tempfile
import threading
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.models import ScalableQuantumVAE
from repro.nn.serialization import save_module
from repro.serving import GenerationService

CLIENTS = 8
REQUESTS_PER_CLIENT = 6
SAMPLES_PER_REQUEST = 4
MOLECULES_PER_RUN = CLIENTS * REQUESTS_PER_CLIENT * SAMPLES_PER_REQUEST

# Flush windows swept by run_serving.py (milliseconds).  0 still fuses
# whatever backlog concurrency builds up; the positive windows trade
# latency for guaranteed fusion.
FLUSH_WINDOWS_MS = (0.0, 1.0, 2.0, 5.0)

MODEL_SPEC = {"model": "sq-vae", "input_dim": 64, "n_patches": 4,
              "n_layers": 1, "latent_dim": None, "seed": 0}


@lru_cache(maxsize=1)
def _checkpoint_path() -> str:
    """A saved sq-vae checkpoint in a tmpdir (built once per process)."""
    model = ScalableQuantumVAE(
        input_dim=MODEL_SPEC["input_dim"],
        n_patches=MODEL_SPEC["n_patches"],
        n_layers=MODEL_SPEC["n_layers"],
        rng=np.random.default_rng(MODEL_SPEC["seed"]),
    )
    directory = Path(tempfile.mkdtemp(prefix="repro-bench-serving-"))
    return str(save_module(model, directory / "sq-vae", metadata=MODEL_SPEC))


def run_scenario(flush_ms: float, *, clients: int = CLIENTS,
                 requests_per_client: int = REQUESTS_PER_CLIENT,
                 samples_per_request: int = SAMPLES_PER_REQUEST) -> dict:
    """One serving run: ``clients`` threads, back-to-back sample requests.

    Returns molecules/sec, per-request latency percentiles (ms), and the
    batcher's fusion counters.
    """
    service = GenerationService(
        default_checkpoint=_checkpoint_path(),
        flush_window=flush_ms / 1000.0,
        max_batch=64,
        default_timeout=120.0,
    )
    latencies: list[float] = []
    lock = threading.Lock()

    def client(client_id: int) -> None:
        mine = []
        for index in range(requests_per_client):
            started = time.perf_counter()
            service.sample(samples_per_request,
                           seed=client_id * 1000 + index)
            mine.append(time.perf_counter() - started)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    stats = service.stats()["batcher"]
    service.close()

    molecules = clients * requests_per_client * samples_per_request
    ordered = np.sort(latencies)
    return {
        "flush_ms": flush_ms,
        "clients": clients,
        "molecules": molecules,
        "wall_s": round(wall, 6),
        "molecules_per_sec": round(molecules / wall, 1),
        "p50_latency_ms": round(float(np.percentile(ordered, 50)) * 1e3, 3),
        "p99_latency_ms": round(float(np.percentile(ordered, 99)) * 1e3, 3),
        "mean_batch_size": stats["mean_batch_size"],
        "batch_size_max": stats["batch_size_max"],
        "batches": stats["batches"],
    }


def run_sequential() -> dict:
    """Baseline: the same request stream with no concurrency and no window."""
    return run_scenario(
        0.0, clients=1,
        requests_per_client=CLIENTS * REQUESTS_PER_CLIENT,
        samples_per_request=SAMPLES_PER_REQUEST,
    )
