"""Benchmark-regression runner: time bench_kernels.py, write BENCH_kernels.json.

The kernel micro-benchmarks in :mod:`bench_kernels` are written against the
pytest-benchmark fixture API, but tracking a perf trajectory across PRs needs
a dependency-free, scriptable entry point.  This runner calls every
``bench_*`` function with a minimal fixture shim (warmup + min-of-rounds
timing), derives compiled-vs-naive speedups for the benchmark pairs that have
a ``*_naive`` baseline, and writes everything to ``BENCH_kernels.json`` at
the repo root — the file future PRs diff against.

Each payload is stamped with the git commit it was generated at, and
``--check`` turns the runner into a perf-regression gate: it fails (exit 1)
when any measured compiled/stacked-vs-naive speedup drops below its floor in
:data:`SPEEDUP_FLOORS`, which makes the perf trajectory enforceable in CI.

Usage::

    PYTHONPATH=src python benchmarks/run_kernels.py [--only SUBSTR]
        [--rounds N] [--output PATH] [--check]
"""

from __future__ import annotations

import argparse
import inspect
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_machine import machine_stamp  # noqa: E402

_NAIVE_SUFFIX = "_naive"
_C64_SUFFIX = "_c64"
_THREADED_SUFFIX = "_threaded"

# Floors asserted by --check: the measured speedup of each benchmark over its
# ``*_naive`` baseline must stay at or above these.  Values sit well below
# the ratios recorded in BENCH_kernels.json so machine noise does not trip
# the gate, while still catching a real regression (e.g. the stacked patched
# path falling back to the per-patch loop).
SPEEDUP_FLOORS = {
    "bench_circuit_forward_8q_5layers": 3.0,
    "bench_adjoint_backward_8q_5layers": 1.5,
    # The unified per-instance adjoint (transition-matrix backward on the
    # stacked substrate at p=1) vs the per-parameter generator reference,
    # at the issue's gate geometry: n=8, 3-layer Rot+ring.
    "bench_compiled_adjoint_unified": 1.5,
    # Stacked-vs-sequential floors: the sequential per-patch baseline now
    # runs the same unified transition-matrix backward per patch, so the
    # stacked win is amortized invocation overhead (~2.3x measured at
    # p16/p8_b8) rather than the pre-unification ~3.7-5.9x over the old
    # generator-insertion loop.  The regression these floors catch — the
    # layer silently falling back to the sequential loop — shows up as
    # ~1.0x, far below them.
    "bench_patched_fwd_bwd_p8": 1.2,
    "bench_patched_fwd_bwd_p8_b8": 1.8,
    "bench_patched_fwd_bwd_p16": 1.8,
}

# Floors for the float32/complex64 precision mode: each ``<name>_c64``
# benchmark is measured against its complex128 twin ``<name>``.  The
# headline gate is the bandwidth-bound large-batch stacked pass
# (p=8/batch=32), where halving the bytes per kernel must stay worth at
# least 1.3x fwd+bwd.  The secondary floors sit at 1.05 — locally they
# measure 1.2-1.4x, but shared CI runners and differing BLAS builds add
# noise, and the regression these catch (a path silently widening back to
# complex128) shows up as a ratio of ~1.0.
#
# The compiled-adjoint c64 ratio is recorded but deliberately NOT floored:
# after the adjoint unification the per-instance backward does a fraction
# of the former dense work, its c64 win shrank to ~1.13x, and a 1.05 floor
# could no longer separate a real widening (~1.0) from runner noise.  The
# forward and stacked c64 floors remain the widening tripwires.
C64_SPEEDUP_FLOORS = {
    "bench_patched_fwd_bwd_p8_c64": 1.3,
    "bench_patched_fwd_bwd_p16_c64": 1.05,
    "bench_circuit_forward_8q_5layers_c64": 1.05,
}

# Floors for the ThreadedBackend: each ``<name>_threaded`` benchmark is
# measured against its NumpyBackend twin ``<name>``.  The headline gate is
# the stacked p=16/batch=32 training pass, whose (512, 64) row dimension
# shards across the worker pool — row sharding must beat the
# single-threaded kernels outright (> 1.0x) wherever there is parallel
# hardware.  These floors are enforced only when the threaded backend's
# pool resolves to more than one worker: on a single-core runner the
# backend deliberately degrades to the plain NumPy kernels (sharding can
# only add overhead there), so the ratio hovers at ~1.0 plus noise and a
# floor would gate on machine noise rather than on a regression.  The
# ratio and the worker count are recorded in BENCH_kernels.json either
# way.
THREADED_SPEEDUP_FLOORS = {
    "bench_patched_fwd_bwd_p16_threaded": 1.0,
}


def threaded_worker_count() -> int:
    """Workers the registered ``threaded`` backend resolves to."""
    from repro.quantum.backends import resolve_backend

    return resolve_backend("threaded").max_workers


def git_commit() -> str | None:
    """The commit the benchmarked tree is based on, or None outside git.

    Suffixed with ``-dirty`` when the working tree has uncommitted changes,
    so BENCH_kernels.json never attributes numbers measured on modified
    code to a clean commit.
    """
    def _git(*args):
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    head = _git("rev-parse", "HEAD")
    if head is None:
        return None
    status = _git("status", "--porcelain")
    dirty = "-dirty" if status is None or status.strip() else ""
    return head.strip() + dirty


class TimerShim:
    """Duck-types the pytest-benchmark fixture: ``benchmark(fn)`` and
    ``benchmark.pedantic(fn, ...)``.  Times min/mean over ``rounds`` calls
    after one warmup (the warmup also absorbs one-time plan compilation, so
    steady-state kernel cost is what gets recorded)."""

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.stats: dict[str, float] | None = None

    def __call__(self, fn):
        result = fn()  # warmup
        times = []
        for _ in range(self.rounds):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": self.rounds,
        }
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0):
        kwargs = kwargs or {}
        for _ in range(warmup_rounds):
            fn(*args, **kwargs)
        times = []
        result = None
        for _ in range(max(rounds, 1)):
            start = time.perf_counter()
            for _ in range(max(iterations, 1)):
                result = fn(*args, **kwargs)
            times.append((time.perf_counter() - start) / max(iterations, 1))
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": rounds,
        }
        return result


def discover(only: str | None):
    import bench_kernels

    benches = []
    for name, fn in inspect.getmembers(bench_kernels, inspect.isfunction):
        if not name.startswith("bench_"):
            continue
        if only and only not in name:
            continue
        params = inspect.signature(fn).parameters
        if list(params) != ["benchmark"]:
            continue
        benches.append((name, fn))
    return sorted(benches)


def _ratio_pairs(results: dict, pair) -> dict:
    """baseline-time / measured-time for every pair ``pair(name) -> (key,
    baseline_name)``; ``pair`` returns None for unpaired benchmarks."""
    out = {}
    for name, stats in results.items():
        mapped = pair(name)
        if mapped is None:
            continue
        key, baseline_name = mapped
        baseline = results.get(baseline_name)
        if baseline:
            out[key] = round(baseline["min_s"] / stats["min_s"], 3)
    return out


def speedups(results: dict) -> dict:
    """naive-time / compiled-time for every ``<name>`` / ``<name>_naive`` pair."""
    return _ratio_pairs(results, lambda name: (name, name + _NAIVE_SUFFIX))


def c64_speedups(results: dict) -> dict:
    """complex128-time / complex64-time for every ``<name>_c64`` / ``<name>``
    pair — the measured win of the float32/complex64 precision mode."""
    return _ratio_pairs(
        results,
        lambda name: (name, name[: -len(_C64_SUFFIX)])
        if name.endswith(_C64_SUFFIX)
        else None,
    )


def threaded_speedups(results: dict) -> dict:
    """NumpyBackend-time / ThreadedBackend-time for every
    ``<name>_threaded`` / ``<name>`` pair — the measured win of sharding
    the stacked row dimension across the worker pool."""
    return _ratio_pairs(
        results,
        lambda name: (name, name[: -len(_THREADED_SUFFIX)])
        if name.endswith(_THREADED_SUFFIX)
        else None,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", help="substring filter on benchmark names")
    parser.add_argument("--rounds", type=int, default=15,
                        help="timed rounds per benchmark (default 15)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernels.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any measured speedup falls below its "
                             "floor in SPEEDUP_FLOORS")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    benches = discover(args.only)
    if not benches:
        print(f"no benchmarks match --only {args.only!r}; not writing output",
              file=sys.stderr)
        return 1

    results: dict[str, dict] = {}
    for name, fn in benches:
        shim = TimerShim(args.rounds)
        fn(shim)
        results[name] = shim.stats
        print(f"{name:48s} min {shim.stats['min_s'] * 1e3:10.3f} ms  "
              f"mean {shim.stats['mean_s'] * 1e3:10.3f} ms", file=sys.stderr)

    measured = speedups(results)
    measured_c64 = c64_speedups(results)
    measured_threaded = threaded_speedups(results)
    workers = threaded_worker_count()
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_commit": git_commit(),
        **machine_stamp(),
        "rounds": args.rounds,
        "threaded_workers": workers,
        "benchmarks": results,
        "speedup_vs_naive": measured,
        "speedup_c64_vs_c128": measured_c64,
        "speedup_threaded_vs_numpy": measured_threaded,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        gates = [
            (SPEEDUP_FLOORS, measured),
            (C64_SPEEDUP_FLOORS, measured_c64),
        ]
        if workers > 1:
            gates.append((THREADED_SPEEDUP_FLOORS, measured_threaded))
        else:
            print(
                "warning: threaded backend resolved to a single worker "
                "(serial hardware); ThreadedBackend floors recorded but "
                "not enforced", file=sys.stderr,
            )
        failures = []
        checked = []
        for floors, ratios in gates:
            checked += [name for name in floors if name in ratios]
            for name in sorted(set(floors) - set(ratios)):
                print(f"warning: floored benchmark {name} was not measured "
                      f"(filtered by --only?)", file=sys.stderr)
            failures += [
                (name, ratios[name], floor)
                for name, floor in sorted(floors.items())
                if name in ratios and ratios[name] < floor
            ]
        for name, got, floor in failures:
            print(f"REGRESSION {name}: speedup {got:.2f}x below floor "
                  f"{floor:.1f}x", file=sys.stderr)
        if failures:
            return 1
        if not checked:
            print("--check measured no floored benchmark; refusing to pass "
                  "an empty gate", file=sys.stderr)
            return 1
        print(f"--check ok: {len(checked)} speedup floor(s) held",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
