"""Benchmark-regression runner: time bench_kernels.py, write BENCH_kernels.json.

The kernel micro-benchmarks in :mod:`bench_kernels` are written against the
pytest-benchmark fixture API, but tracking a perf trajectory across PRs needs
a dependency-free, scriptable entry point.  This runner calls every
``bench_*`` function with a minimal fixture shim (warmup + min-of-rounds
timing), derives compiled-vs-naive speedups for the benchmark pairs that have
a ``*_naive`` baseline, and writes everything to ``BENCH_kernels.json`` at
the repo root — the file future PRs diff against.

Usage::

    PYTHONPATH=src python benchmarks/run_kernels.py [--only SUBSTR]
        [--rounds N] [--output PATH]
"""

from __future__ import annotations

import argparse
import inspect
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

_NAIVE_SUFFIX = "_naive"


class TimerShim:
    """Duck-types the pytest-benchmark fixture: ``benchmark(fn)`` and
    ``benchmark.pedantic(fn, ...)``.  Times min/mean over ``rounds`` calls
    after one warmup (the warmup also absorbs one-time plan compilation, so
    steady-state kernel cost is what gets recorded)."""

    def __init__(self, rounds: int):
        self.rounds = rounds
        self.stats: dict[str, float] | None = None

    def __call__(self, fn):
        result = fn()  # warmup
        times = []
        for _ in range(self.rounds):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": self.rounds,
        }
        return result

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0):
        kwargs = kwargs or {}
        for _ in range(warmup_rounds):
            fn(*args, **kwargs)
        times = []
        result = None
        for _ in range(max(rounds, 1)):
            start = time.perf_counter()
            for _ in range(max(iterations, 1)):
                result = fn(*args, **kwargs)
            times.append((time.perf_counter() - start) / max(iterations, 1))
        self.stats = {
            "min_s": min(times),
            "mean_s": sum(times) / len(times),
            "max_s": max(times),
            "rounds": rounds,
        }
        return result


def discover(only: str | None):
    import bench_kernels

    benches = []
    for name, fn in inspect.getmembers(bench_kernels, inspect.isfunction):
        if not name.startswith("bench_"):
            continue
        if only and only not in name:
            continue
        params = inspect.signature(fn).parameters
        if list(params) != ["benchmark"]:
            continue
        benches.append((name, fn))
    return sorted(benches)


def speedups(results: dict) -> dict:
    """naive-time / compiled-time for every ``<name>`` / ``<name>_naive`` pair."""
    out = {}
    for name, stats in results.items():
        baseline = results.get(name + _NAIVE_SUFFIX)
        if baseline:
            out[name] = round(baseline["min_s"] / stats["min_s"], 3)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", help="substring filter on benchmark names")
    parser.add_argument("--rounds", type=int, default=15,
                        help="timed rounds per benchmark (default 15)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_kernels.json")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    benches = discover(args.only)
    if not benches:
        print(f"no benchmarks match --only {args.only!r}; not writing output",
              file=sys.stderr)
        return 1

    results: dict[str, dict] = {}
    for name, fn in benches:
        shim = TimerShim(args.rounds)
        fn(shim)
        results[name] = shim.stats
        print(f"{name:48s} min {shim.stats['min_s'] * 1e3:10.3f} ms  "
              f"mean {shim.stats['mean_s'] * 1e3:10.3f} ms", file=sys.stderr)

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": args.rounds,
        "benchmarks": results,
        "speedup_vs_naive": speedups(results),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
