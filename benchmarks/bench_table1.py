"""Benchmark + reproduction of Table I (trainable-parameter comparison)."""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, run_table1


def bench_table1(benchmark, show, scale):
    result = run_once(benchmark, lambda: run_table1(seed=0))
    show("Table I: trainable parameters", result.format_table())

    by_model = {row.model: row for row in result.rows}
    # Every quantum architecture's counts are derivable from the paper text
    # and must match exactly.
    for model in ("F-BQ-VAE", "F-BQ-AE", "H-BQ-VAE", "H-BQ-AE"):
        assert by_model[model].matches_paper, model
    # The classical MLP reproduces the paper's *structure* (3 hidden layers,
    # VAE = AE + 84) with a documented absolute offset.
    assert by_model["VAE"].total - by_model["AE"].total == 84
    assert by_model["AE"].quantum == 0
    # Qubit-efficiency headline: the fully quantum VAE uses ~30x fewer
    # parameters than the classical VAE (paper: 192 vs 5694).
    assert by_model["F-BQ-VAE"].total * 10 < by_model["VAE"].total
    assert PAPER_TABLE1["F-BQ-VAE"][2] * 10 < PAPER_TABLE1["VAE"][2]


def bench_table1_model_construction(benchmark):
    """Micro: construction cost of the full Table I model zoo."""
    import numpy as np

    from repro.models import (
        ClassicalAE,
        ClassicalVAE,
        FullyQuantumAE,
        FullyQuantumVAE,
        HybridQuantumAE,
        HybridQuantumVAE,
    )

    def build_all():
        rng = np.random.default_rng(0)
        return [
            ClassicalAE(rng=rng),
            ClassicalVAE(rng=rng),
            FullyQuantumAE(rng=rng),
            FullyQuantumVAE(rng=rng),
            HybridQuantumAE(rng=rng),
            HybridQuantumVAE(rng=rng),
        ]

    models = benchmark(build_all)
    assert len(models) == 6
