"""Benchmark + reproduction of Table II (drug properties of sampled ligands).

Trains SQ-VAE and classical VAE at every patched latent dimension
(18/32/56/96), samples molecules from each prior, and scores the sets with
normalized QED / logP / SA — the paper's full evaluation protocol.
"""

from conftest import run_once

from repro.experiments.table2 import Table2Config, run_table2


def bench_table2(benchmark, show, scale):
    config = Table2Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_table2(config))
    show("Table II: drug properties of sampled ligands", result.format_table())

    lsds = config.lsds
    for metric in ("qed", "logp", "sa"):
        for model in ("VAE", "SQ-VAE"):
            for lsd in lsds:
                value = result.value(model, metric, lsd)
                assert 0.0 <= value <= 1.0, (model, metric, lsd, value)

    # Shape check from Section IV-D: "SQ-VAE drug properties do not vary
    # much with LSD" — its QED spread across LSDs stays tight.
    sq_qed = [result.value("SQ-VAE", "qed", lsd) for lsd in lsds]
    assert max(sq_qed) - min(sq_qed) < 0.2

    # Both models produce scoreable (non-empty) molecule sets at every LSD.
    for cell in result.cells:
        assert cell.qed > 0.0, (cell.model, cell.lsd)
