"""Serving-benchmark runner: sweep flush windows, write BENCH_serving.json.

Same discipline as ``run_pipeline.py``: :mod:`bench_serving` scenarios run
for ``--rounds`` rounds each (best round kept — thread-scheduling noise
only ever subtracts throughput), the payload is stamped with the machine
and the git commit it was generated at, and ``--check`` turns the runner
into a regression gate.

The gate holds three floors, all set far below healthy measurements so
they catch the serving layer *collapsing*, not slow hardware:

* ``SPEEDUP_FLOOR`` — concurrent micro-batched throughput over the
  sequential per-request baseline.  Falls to ~1.0x if batching silently
  degrades to one engine pass per request.
* ``FUSION_FLOOR`` — the best mean batch size seen across the sweep.
  Falls to 1.0 if requests stop sharing passes.
* ``THROUGHPUT_FLOOR`` — absolute molecules/sec of the best scenario.

Usage::

    PYTHONPATH=src python benchmarks/run_serving.py [--rounds N]
        [--output PATH] [--check]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_machine import machine_stamp  # noqa: E402

SPEEDUP_FLOOR = 1.2
FUSION_FLOOR = 2.0
THROUGHPUT_FLOOR = 250.0  # molecules/sec; healthy machines measure 1000s


def git_commit() -> str | None:
    """HEAD (suffixed ``-dirty`` when the tree has uncommitted changes)."""
    def _git(*args):
        try:
            proc = subprocess.run(
                ["git", *args], cwd=REPO_ROOT, capture_output=True,
                text=True, timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    head = _git("rev-parse", "HEAD")
    if head is None:
        return None
    status = _git("status", "--porcelain")
    dirty = "-dirty" if status is None or status.strip() else ""
    return head.strip() + dirty


def best_of(rounds: int, scenario) -> dict:
    """Run ``scenario`` ``rounds`` times; keep the highest-throughput run."""
    best = None
    for _ in range(rounds):
        result = scenario()
        if best is None or result["molecules_per_sec"] > best[
                "molecules_per_sec"]:
            best = result
    return best


def main(argv=None) -> int:
    import bench_serving

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds per scenario, best kept (default 3)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if speedup, fusion, or throughput "
                             "falls below its floor")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    bench_serving._checkpoint_path()  # build + warm outside the timers

    sequential = best_of(args.rounds, bench_serving.run_sequential)
    print(f"{'sequential':>14s}  {sequential['molecules_per_sec']:8.1f} "
          f"mol/s  p50 {sequential['p50_latency_ms']:7.3f} ms  "
          f"p99 {sequential['p99_latency_ms']:7.3f} ms", file=sys.stderr)

    sweep = {}
    for flush_ms in bench_serving.FLUSH_WINDOWS_MS:
        result = best_of(
            args.rounds, lambda fm=flush_ms: bench_serving.run_scenario(fm)
        )
        sweep[f"{flush_ms:g}ms"] = result
        print(f"{f'flush {flush_ms:g} ms':>14s}  "
              f"{result['molecules_per_sec']:8.1f} mol/s  "
              f"p50 {result['p50_latency_ms']:7.3f} ms  "
              f"p99 {result['p99_latency_ms']:7.3f} ms  "
              f"mean batch {result['mean_batch_size']:5.2f}",
              file=sys.stderr)

    best_key = max(sweep, key=lambda k: sweep[k]["molecules_per_sec"])
    best = sweep[best_key]
    speedup = round(
        best["molecules_per_sec"] / sequential["molecules_per_sec"], 3
    )
    fusion = max(result["mean_batch_size"] for result in sweep.values())

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_commit": git_commit(),
        **machine_stamp(),
        "rounds": args.rounds,
        "workload": {
            "model": bench_serving.MODEL_SPEC["model"],
            "clients": bench_serving.CLIENTS,
            "requests_per_client": bench_serving.REQUESTS_PER_CLIENT,
            "samples_per_request": bench_serving.SAMPLES_PER_REQUEST,
            "molecules_per_run": bench_serving.MOLECULES_PER_RUN,
        },
        "sequential": sequential,
        "flush_sweep": sweep,
        "best_flush": best_key,
        "speedup_vs_sequential": speedup,
        "best_mean_batch_size": fusion,
        "floors": {
            "speedup_vs_sequential": SPEEDUP_FLOOR,
            "mean_batch_size": FUSION_FLOOR,
            "molecules_per_sec": THROUGHPUT_FLOOR,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        failures = []
        if speedup < SPEEDUP_FLOOR:
            failures.append(
                f"REGRESSION serving speedup {speedup:.2f}x below floor "
                f"{SPEEDUP_FLOOR:.1f}x"
            )
        if fusion < FUSION_FLOOR:
            failures.append(
                f"REGRESSION best mean batch size {fusion:.2f} below floor "
                f"{FUSION_FLOOR:.1f} — requests are not sharing passes"
            )
        if best["molecules_per_sec"] < THROUGHPUT_FLOOR:
            failures.append(
                f"REGRESSION best throughput "
                f"{best['molecules_per_sec']:.1f} molecules/sec below "
                f"floor {THROUGHPUT_FLOOR:.1f}"
            )
        for line in failures:
            print(line, file=sys.stderr)
        if failures:
            return 1
        print("--check ok: 3 floor(s) held", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
