"""Shared benchmark fixtures.

Benchmarks run the experiment drivers at the scale selected by
``REPRO_FULL`` (fast by default) and print the same rows/series the paper's
tables and figures report.  Run with::

    pytest benchmarks/ --benchmark-only

Training-based benchmarks execute once (``rounds=1``) — they are end-to-end
reproductions, not micro-benchmarks; the kernel benchmarks in
``bench_kernels.py`` use normal multi-round timing.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments import get_scale


@pytest.fixture(scope="session")
def scale():
    value = get_scale()
    print(f"\n[repro] benchmark scale: {value.name} "
          f"(REPRO_FULL=1 for paper-scale)", file=sys.stderr)
    return value


@pytest.fixture
def show():
    """Print a result block so it is visible in benchmark logs."""

    def _show(title: str, body: str) -> None:
        print(f"\n===== {title} =====\n{body}\n", file=sys.stderr)

    return _show


def run_once(benchmark, fn):
    """Time a single end-to-end run and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
