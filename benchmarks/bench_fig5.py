"""Benchmark + reproduction of Fig. 5 (baseline quantum fails at 1024-dim).

Panel (a): F-BQ-AE / H-BQ-AE / classical AE squeezed through a 10-dim
latent on PDBbind; panel (b): classical AE/VAE latent-dimension sweep.
"""

from conftest import run_once

from repro.experiments.fig5 import Fig5Config, run_fig5


def bench_fig5(benchmark, show, scale):
    config = Fig5Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_fig5(config))
    show("Fig. 5: baseline quantum AEs on PDBbind", result.format_table())

    # Panel (a): the classical AE ends below both baseline quantum variants
    # ("F-BQ-AE hardly learns", Section III-C).
    assert result.baseline_quantum_fails()

    # The F-BQ-AE's curve is nearly flat: its probability outputs cannot
    # approach original-scale ligand matrices.
    f_bq = result.curves["F-BQ-AE 10D"]
    assert abs(f_bq[-1] - f_bq[0]) < 0.05

    # Panel (b): AE test loss improves when the latent grows 10 -> 128.
    assert result.ae_improves_with_lsd()
