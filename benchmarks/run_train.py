"""Data-parallel training runner: workers sweep vs the sequential trainer.

Drives the workloads defined in :mod:`bench_train_parallel` — the
classical-AE training run under the default single-process strategy, the
shared-memory ``ParallelTrainStep`` at each worker count, and the
in-process ``ShardedTrainStep`` reduction-order reference — and writes
``BENCH_train.json`` at the repo root.

Each run is timed twice over: *loop seconds* (the sum of per-epoch wall
clocks on ``EpochRecord.seconds`` — the steady-state cost the pool
shrinks) and *setup seconds* (total ``fit`` wall minus the loop,
dominated by worker spawn).  Speedups are derived from loop seconds so a
short benchmark does not bill one-time spawn cost against the per-epoch
win; the spawn cost stays visible in the payload as its own number.

``--check`` turns the runner into a regression gate with two families:

* **Correctness anchors, enforced everywhere.**  Every seed is pinned, so
  ``workers=1`` must reproduce the sequential trainer *bit for bit*
  (plain ``==`` on loss histories and on every parameter array — no
  tolerance) and ``workers=2`` must likewise match ``ShardedTrainStep(2)``,
  the single-process reference replaying the identical fixed-worker-order
  reduction.  Any drift — a dtype slip in the shared-memory transport, a
  reduction reorder, a layout-dependent summation — fails the gate.
* **Speedup floor, enforced only where it can hold.**  The
  ``workers=2`` loop must beat the sequential loop by
  :data:`MULTI_WORKER_FLOOR` — but only when the machine reports more
  than one CPU (``cpu_count`` in the stamp); on a single-core runner two
  workers time-slice one core plus pay IPC, so the floor is reported but
  not gated.

Each payload is stamped with the git commit plus the CPU count and BLAS
vendor, matching the other ``BENCH_*.json`` files future PRs diff
against.

Usage::

    PYTHONPATH=src python benchmarks/run_train.py [--only SUBSTR]
        [--rounds N] [--output PATH] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_machine import machine_stamp  # noqa: E402
from bench_train_parallel import (  # noqa: E402
    BATCH_SIZE,
    EPOCHS,
    INPUT_DIM,
    TRAIN_N,
    WORKER_SWEEP,
    histories_equal,
    loop_seconds,
    parameters_equal,
    train_once,
)

# The workers=2 training loop must beat the sequential loop by this much
# on multi-core machines (per-epoch time, spawn excluded).  Modest on
# purpose: the epoch-level win is bounded by per-step IPC (parameter
# publish + gradient collect through shared memory) and by the smallest
# shard, so the floor guards "the pool actually helps" rather than a 2x
# headline.  Single-core machines report the ratio but never gate on it.
MULTI_WORKER_FLOOR = 1.05

_SEQUENTIAL = "train_sequential"


def _workloads():
    """Name -> zero-arg callable returning ``(history, model, wall_s)``."""
    from repro.training import ShardedTrainStep

    jobs = {_SEQUENTIAL: lambda: train_once()}
    for n in WORKER_SWEEP:
        jobs[f"train_workers_{n}"] = (
            lambda n=n: train_once(workers=n)
        )
    reference = max(WORKER_SWEEP)
    jobs[f"train_sharded_reference_{reference}"] = (
        lambda: train_once(strategy=ShardedTrainStep(reference))
    )
    return jobs


def git_commit() -> str | None:
    """The commit the benchmarked tree is based on, or None outside git.

    Suffixed with ``-dirty`` when the working tree has uncommitted changes,
    so BENCH_train.json never attributes numbers measured on modified code
    to a clean commit.
    """
    def _git(*args):
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    head = _git("rev-parse", "HEAD")
    if head is None:
        return None
    status = _git("status", "--porcelain")
    dirty = "-dirty" if status is None or status.strip() else ""
    return head.strip() + dirty


def _stats(times: list) -> dict:
    return {
        "min_s": min(times),
        "mean_s": sum(times) / len(times),
        "max_s": max(times),
        "rounds": len(times),
    }


def run_workload(fn, rounds: int):
    """Train ``rounds`` times; every run is deterministic and identical.

    Returns ``(stats, history, model)`` where ``stats`` carries separate
    loop/setup/wall timings and the history/model come from the first run
    (any run would do — the whole point is that they are bitwise equal).
    """
    loop_times, setup_times, wall_times = [], [], []
    anchor = None
    for _ in range(rounds):
        history, model, wall_s = fn()
        loop_s = loop_seconds(history)
        loop_times.append(loop_s)
        setup_times.append(wall_s - loop_s)
        wall_times.append(wall_s)
        if anchor is None:
            anchor = (history, model)
    stats = {
        "loop": _stats(loop_times),
        "setup": _stats(setup_times),
        "wall": _stats(wall_times),
    }
    return stats, anchor[0], anchor[1]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", help="substring filter on workload names")
    parser.add_argument("--rounds", type=int, default=3,
                        help="full training runs per workload (default 3)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_train.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if an equality anchor breaks or (on "
                             "multi-core machines) the multi-worker speedup "
                             "falls below its floor")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    results: dict[str, dict] = {}
    anchors: dict[str, tuple] = {}
    for name, fn in _workloads().items():
        if args.only and args.only not in name:
            continue
        stats, history, model = run_workload(fn, args.rounds)
        results[name] = stats
        anchors[name] = (history, model)
        print(f"{name:28s} loop {stats['loop']['min_s'] * 1e3:9.1f} ms  "
              f"setup {stats['setup']['mean_s'] * 1e3:9.1f} ms",
              file=sys.stderr)

    if not results:
        print(f"no workloads match --only {args.only!r}; not writing output",
              file=sys.stderr)
        return 1

    # Loop-seconds speedups of every parallel leg over the sequential
    # trainer (min over rounds on both sides).
    speedups: dict[str, float] = {}
    if _SEQUENTIAL in results:
        sequential_min = results[_SEQUENTIAL]["loop"]["min_s"]
        for name, stats in results.items():
            if name == _SEQUENTIAL:
                continue
            speedups[name] = round(
                sequential_min / stats["loop"]["min_s"], 3
            )

    # Bit-for-bit equality anchors, computed wherever both legs ran.
    equality: dict[str, dict] = {}
    pairs = [("train_workers_1", _SEQUENTIAL, "workers1_vs_sequential")]
    reference = max(WORKER_SWEEP)
    pairs.append((
        f"train_workers_{reference}",
        f"train_sharded_reference_{reference}",
        f"workers{reference}_vs_sharded_reference",
    ))
    for left, right, label in pairs:
        if left not in anchors or right not in anchors:
            continue
        (h_l, m_l), (h_r, m_r) = anchors[left], anchors[right]
        equality[label] = {
            "history": histories_equal(h_l, h_r),
            "parameters": parameters_equal(m_l, m_r),
        }
        print(f"{label:36s} history={equality[label]['history']}  "
              f"parameters={equality[label]['parameters']}",
              file=sys.stderr)

    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_commit": git_commit(),
        **machine_stamp(),
        "rounds": args.rounds,
        "workload": {
            "model": "ae",
            "input_dim": INPUT_DIM,
            "train_n": TRAIN_N,
            "epochs": EPOCHS,
            "batch_size": BATCH_SIZE,
            "worker_sweep": list(WORKER_SWEEP),
        },
        "benchmarks": results,
        "speedup_vs_sequential": speedups,
        "equality": equality,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        checked = 0
        failures = []
        expected_anchors = [label for _, _, label in pairs]
        for label in expected_anchors:
            if label not in equality:
                print(f"warning: equality anchor {label} was not measured "
                      f"(filtered by --only?)", file=sys.stderr)
                continue
            checked += 1
            for field, held in sorted(equality[label].items()):
                if not held:
                    failures.append(
                        f"EQUALITY {label}: {field} differ — the parallel "
                        f"path no longer reproduces its reference bit for bit"
                    )
        gated = f"train_workers_{max(WORKER_SWEEP)}"
        cpu_count = os.cpu_count() or 1
        if gated in speedups:
            if cpu_count > 1:
                checked += 1
                if speedups[gated] < MULTI_WORKER_FLOOR:
                    failures.append(
                        f"REGRESSION {gated}: speedup {speedups[gated]:.2f}x "
                        f"below floor {MULTI_WORKER_FLOOR:.2f}x"
                    )
            else:
                print(f"single-core machine (cpu_count={cpu_count}): "
                      f"multi-worker speedup floor not gated "
                      f"(measured {speedups[gated]:.2f}x)", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        if failures:
            return 1
        if not checked:
            print("--check measured no anchor or floor; refusing to pass "
                  "an empty gate", file=sys.stderr)
            return 1
        print(f"--check ok: {checked} anchor(s)/floor(s) held",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
