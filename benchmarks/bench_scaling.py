"""Simulator scaling benchmarks: cost vs qubits, patches, and batch size.

These document the computational envelope of the reproduction (and guard
against performance regressions): statevector simulation is exponential in
qubits per circuit but the patched architecture keeps each patch small —
the entire point of Section III-C.
"""

import numpy as np
import pytest

from repro.quantum import Circuit, backward, execute


def _run_circuit(n_wires, n_layers=3, batch=32):
    circuit = (
        Circuit(n_wires)
        .amplitude_embedding(2**n_wires, zero_fallback=True)
        .strongly_entangling_layers(n_layers)
        .measure_expval()
    )
    rng = np.random.default_rng(n_wires)
    weights = rng.uniform(-np.pi, np.pi, circuit.n_weights)
    inputs = np.abs(rng.normal(size=(batch, 2**n_wires))) + 0.01

    def step():
        outputs, cache = execute(circuit, inputs, weights)
        grad_in, grad_w = backward(cache, np.ones_like(outputs))
        return grad_w

    return step


@pytest.mark.parametrize("n_wires", [4, 6, 8, 10])
def bench_forward_backward_by_qubits(benchmark, n_wires):
    """Forward+backward cost of one circuit at increasing qubit counts."""
    grad_w = benchmark(_run_circuit(n_wires))
    assert np.isfinite(grad_w).all()


@pytest.mark.parametrize("batch", [1, 8, 32, 128])
def bench_forward_backward_by_batch(benchmark, batch):
    """Batched simulation amortization at a fixed 8-qubit circuit."""
    grad_w = benchmark(_run_circuit(8, batch=batch))
    assert np.isfinite(grad_w).all()


@pytest.mark.parametrize("patches", [2, 4, 8, 16])
def bench_patched_encoder_by_patch_count(benchmark, patches):
    """Full 1024-feature patched encoder: more patches = smaller circuits.

    Total state memory scales as p * 2**(10 - log2 p) = 1024 * p / p = 1024
    amplitudes per sample regardless — but gate cost per patch shrinks
    exponentially, which is why p = 16 is cheaper than p = 2 despite
    running 8x more circuits.
    """
    from repro.nn import Tensor
    from repro.qnn import PatchedQuantumLayer, amplitude_encoder_circuit, patch_qubits

    qubits = patch_qubits(1024, patches)
    rng = np.random.default_rng(patches)
    layer = PatchedQuantumLayer(
        lambda i: amplitude_encoder_circuit(qubits, 1024 // patches, 5,
                                            zero_fallback=True),
        n_patches=patches,
        rng=rng,
    )
    x = Tensor(np.abs(rng.normal(size=(32, 1024))) + 0.01)
    out = benchmark(lambda: layer(x))
    assert out.shape[1] == layer.output_dim


def bench_molecule_generation(benchmark):
    """Dataset substrate: ligand generation throughput."""
    from repro.chem import MoleculeSpec, random_molecules

    spec = MoleculeSpec(min_atoms=12, max_atoms=32,
                        hetero_weights={"N": 0.1, "O": 0.12, "S": 0.03},
                        ring_closure_prob=0.5, max_ring_closures=3)
    mols = benchmark(lambda: random_molecules(25, seed=0, spec=spec))
    assert len(mols) == 25
