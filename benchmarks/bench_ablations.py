"""Ablation benchmarks for the design choices the paper leaves implicit.

Each one is an end-to-end controlled study (see
``repro/experiments/ablations.py``) with its own shape assertions.
"""

from conftest import run_once

from repro.experiments.ablations import (
    run_beta_ablation,
    run_cnot_range_ablation,
    run_noise_robustness,
    run_patched_vs_monolithic,
    run_shot_noise_ablation,
)


def bench_patched_vs_monolithic(benchmark, show, scale):
    n_ligands = min(scale.pdbbind_samples, 96)
    result = run_once(
        benchmark,
        lambda: run_patched_vs_monolithic(
            n_ligands=n_ligands, epochs=min(scale.epochs, 4), seed=0
        ),
    )
    show("Ablation: patched vs monolithic", result.format_table())
    # The paper's scaling thesis: the patched encoder's larger latent
    # space reconstructs 1024-dim ligands better than the monolithic
    # 10-qubit baseline within the same budget.
    assert result.patched_wins()


def bench_cnot_range(benchmark, show, scale):
    result = run_once(
        benchmark,
        lambda: run_cnot_range_ablation(
            n_ligands=min(scale.pdbbind_samples, 64),
            epochs=min(scale.epochs, 3),
            seed=0,
        ),
    )
    show("Ablation: CNOT range layouts", result.format_table())
    # Both layouts must train (finite, decreasing-or-flat loss); the paper
    # gives no reason to expect a large gap, and we verify there is none
    # (within 25%).
    finals = [curve[-1] for curve in result.losses.values()]
    assert all(f > 0 for f in finals)
    assert max(finals) < min(finals) * 1.25


def bench_shot_noise(benchmark, show, scale):
    result = run_once(benchmark, lambda: run_shot_noise_ablation(seed=0))
    show("Ablation: finite-shot latent estimation", result.format_table())
    shots = sorted(result.rmse_by_shots)
    rmse = [result.rmse_by_shots[s] for s in shots]
    # RMSE decays roughly as 1/sqrt(shots): 16 -> 4096 shots is a 16x
    # standard-error reduction; require at least 4x observed.
    assert rmse[-1] < rmse[0] / 4
    # The exact simulator (paper setting) is the shots -> infinity limit;
    # by 4096 shots the latent is accurate to a few percent.
    assert result.rmse_by_shots[4096] < 0.05


def bench_noise_robustness(benchmark, show, scale):
    result = run_once(benchmark, lambda: run_noise_robustness(seed=0))
    show("Ablation: depolarizing-noise sensitivity", result.format_table())
    assert result.rmse_by_rate[0.0] < 1e-9  # noiseless == exact
    assert result.degrades_monotonically()
    assert result.rmse_by_rate[0.25] > result.rmse_by_rate[0.01]


def bench_beta_ablation(benchmark, show, scale):
    result = run_once(benchmark, lambda: run_beta_ablation(seed=0))
    show("Ablation: KL weight (beta-VAE)", result.format_table())
    # Stronger KL regularization must not improve reconstruction and must
    # shrink the posterior toward the prior — the mechanism behind the
    # paper's "AEs support more accurate reconstruction" framing.
    assert result.reconstruction_degrades_with_beta()
    assert result.posterior_shrinks_with_beta()
