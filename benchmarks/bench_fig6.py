"""Benchmark + reproduction of Fig. 6 (quantum layer depth ablation).

Sweeps SQ-AE entangling depth 1..9 on PDBbind and checkpoints train/test
losses at two epochs, looking for the paper's U-shape with the optimum in
the interior (paper: L = 5).
"""

from conftest import run_once

from repro.experiments.fig6 import Fig6Config, run_fig6


def bench_fig6(benchmark, show, scale):
    config = Fig6Config.from_scale(scale, seed=0)
    result = run_once(benchmark, lambda: run_fig6(config))
    show("Fig. 6: depth ablation", result.format_table())

    final_test = {d: row[f"test@{config.eval_epochs[1]}"]
                  for d, row in result.losses.items()}

    # Shape claim: a single entangling layer underfits — it must be worse
    # than the best interior depth ("too few quantum layers hurts its
    # expressive power").
    best = result.best_depth()
    assert final_test[1] > final_test[best]

    # The optimum is in the interior of the sweep, not at depth 1
    # (paper's optimum: 5; spurious-local-minima argument for large L).
    assert 2 <= best <= 9

    # All losses are finite and positive.
    for row in result.losses.values():
        for value in row.values():
            assert value > 0.0
